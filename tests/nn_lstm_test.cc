// LSTM cell behavior: shapes, state propagation, initialization, and the
// ability to carry information across time.
#include "nn/lstm.h"

#include <gtest/gtest.h>

#include "nn/optimizer.h"

namespace head::nn {
namespace {

TEST(LstmTest, ShapesAndInitialState) {
  Rng rng(1);
  LstmCell cell(3, 5, rng);
  EXPECT_EQ(cell.input_size(), 3);
  EXPECT_EQ(cell.hidden_size(), 5);
  const LstmState s0 = cell.InitialState(4);
  EXPECT_EQ(s0.h.value().rows(), 4);
  EXPECT_EQ(s0.h.value().cols(), 5);
  EXPECT_DOUBLE_EQ(s0.c.value().MaxAbs(), 0.0);
}

TEST(LstmTest, ForgetGateBiasStartsAtOne) {
  Rng rng(1);
  LstmCell cell(3, 4, rng);
  const Tensor& b = cell.Params()[2].value();
  // Gate order [i, f, g, o]: forget block = cols [4, 8).
  for (int c = 4; c < 8; ++c) EXPECT_DOUBLE_EQ(b.At(0, c), 1.0);
  for (int c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(b.At(0, c), 0.0);
}

TEST(LstmTest, OutputBounded) {
  Rng rng(2);
  LstmCell cell(2, 3, rng);
  LstmState s = cell.InitialState(1);
  for (int k = 0; k < 10; ++k) {
    Tensor x(1, 2, {5.0 * k, -3.0 * k});
    s = cell.Forward(Var::Constant(x), s);
    // h = o ⊙ tanh(c) ∈ (−1, 1).
    EXPECT_LT(s.h.value().MaxAbs(), 1.0);
  }
}

TEST(LstmTest, StatePersistsAcrossSteps) {
  Rng rng(3);
  LstmCell cell(1, 4, rng);
  // Two sequences identical except for the FIRST input; final hidden states
  // must differ (memory) even after several identical steps.
  auto run = [&](double first) {
    LstmState s = cell.InitialState(1);
    s = cell.Forward(Var::Constant(Tensor(1, 1, {first})), s);
    for (int k = 0; k < 4; ++k) {
      s = cell.Forward(Var::Constant(Tensor(1, 1, {0.1})), s);
    }
    return s.h.value();
  };
  EXPECT_NE(run(2.0), run(-2.0));
}

TEST(LstmTest, BatchRowsAreIndependent) {
  Rng rng(4);
  LstmCell cell(2, 3, rng);
  // Batched forward of [a; b] equals the stack of individual forwards.
  Tensor xa(1, 2, {0.5, -0.2});
  Tensor xb(1, 2, {-1.0, 0.8});
  Tensor xab(2, 2, {0.5, -0.2, -1.0, 0.8});
  LstmState sa = cell.Forward(Var::Constant(xa), cell.InitialState(1));
  LstmState sb = cell.Forward(Var::Constant(xb), cell.InitialState(1));
  LstmState sab = cell.Forward(Var::Constant(xab), cell.InitialState(2));
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(sab.h.value().At(0, c), sa.h.value().At(0, c), 1e-12);
    EXPECT_NEAR(sab.h.value().At(1, c), sb.h.value().At(0, c), 1e-12);
  }
}

TEST(LstmTest, LearnsToRememberSign) {
  // Classic memory task: output the sign of the first input after a fixed
  // number of noise steps.
  Rng rng(5);
  LstmCell cell(1, 8, rng);
  Linear head(8, 1, rng);
  std::vector<Var> params = cell.Params();
  for (const Var& p : head.Params()) params.push_back(p);
  Adam opt(params, 0.02);

  Rng data_rng(6);
  double final_loss = 1e9;
  for (int iter = 0; iter < 300; ++iter) {
    const double sign = data_rng.Bernoulli(0.5) ? 1.0 : -1.0;
    LstmState s = cell.InitialState(1);
    s = cell.Forward(Var::Constant(Tensor(1, 1, {sign})), s);
    for (int k = 0; k < 5; ++k) {
      s = cell.Forward(
          Var::Constant(Tensor(1, 1, {data_rng.Uniform(-0.1, 0.1)})), s);
    }
    Var loss = MseLoss(head.Forward(s.h),
                       Var::Constant(Tensor(1, 1, {sign})));
    final_loss = loss.value()[0];
    opt.ZeroGrad();
    Backward(loss);
    opt.Step();
  }
  EXPECT_LT(final_loss, 0.1);
}

}  // namespace
}  // namespace head::nn
