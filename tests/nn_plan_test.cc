// Static execution plans (ISSUE 9): a captured step replayed through an
// nn::ExecPlan must be bitwise identical to the eager arena path — for the
// raw capture/replay primitive, for a full BP-DQN update, and for an
// LST-GAT training epoch and Predict — under fast_math on and off; batches
// the plan machinery cannot serve (mixed history depths) must fall back to
// eager silently; steady-state replay must allocate nothing; and a
// forward-only plan must be safe to replay concurrently from EnvPool
// workers (the TSan stage checks the data-race half of that claim).
//
// The parity tests toggle the config switches (PdqnConfig::static_plans,
// PredictionTrainConfig::static_plans, StatePredictor::set_static_plans),
// so they stay meaningful under HEAD_PLANS=0 as well: both sides then run
// eagerly and the suite degenerates to eager-vs-eager self-consistency.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/arena.h"
#include "nn/autograd.h"
#include "nn/kernels/simd.h"
#include "nn/plan.h"
#include "nn/tensor.h"
#include "parallel/env_pool.h"
#include "parallel/thread_pool.h"
#include "perception/lst_gat.h"
#include "perception/trainer.h"
#include "rl/env.h"
#include "rl/pdqn_agent.h"

namespace head {
namespace {

void ExpectBitwiseEqual(const std::vector<nn::Tensor>& a,
                        const std::vector<nn::Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a[p].rows(), b[p].rows());
    ASSERT_EQ(a[p].cols(), b[p].cols());
    for (int i = 0; i < a[p].size(); ++i) {
      EXPECT_EQ(a[p][i], b[p][i]) << "param " << p << " element " << i;
    }
  }
}

/// Restores the process-wide fast_math switch on scope exit.
class FastMathScope {
 public:
  explicit FastMathScope(bool enabled)
      : prev_(nn::kernels::FastMathEnabled()) {
    nn::kernels::SetFastMath(enabled);
  }
  ~FastMathScope() { nn::kernels::SetFastMath(prev_); }

 private:
  bool prev_;
};

// ---- Raw capture/replay primitive ----

TEST(ExecPlanTest, ForwardReplayMatchesEagerBitwise) {
  Rng rng(5);
  const nn::Var w = nn::Var::Param(nn::Tensor::XavierUniform(4, 3, rng));
  const nn::NoGradGuard no_grad;

  std::shared_ptr<const nn::ExecPlan> plan;
  {
    nn::ResetTape();
    nn::PlanCapture capture;
    plan = capture.Finish(
        {nn::Tanh(nn::MatMul(nn::PlanInput(nn::Tensor::Zeros(2, 4)), w))});
  }
  EXPECT_EQ(plan->num_inputs(), 1u);
  EXPECT_FALSE(plan->has_backward());
  EXPECT_GT(plan->num_nodes(), 0u);

  Rng data(6);
  for (int i = 0; i < 4; ++i) {
    const nn::Tensor x = nn::Tensor::Uniform(2, 4, -1.0, 1.0, data);
    const nn::Tensor replayed = *plan->Replay({x})[0];
    nn::ResetTape();
    const nn::Tensor eager =
        nn::Tanh(nn::MatMul(nn::Var::Constant(x), w)).value();
    ASSERT_EQ(replayed.size(), eager.size());
    for (int e = 0; e < eager.size(); ++e) EXPECT_EQ(replayed[e], eager[e]);
  }
}

TEST(ExecPlanTest, ReplayedBackwardMatchesEagerGradients) {
  Rng rng(7);
  nn::Var w = nn::Var::Param(nn::Tensor::XavierUniform(4, 3, rng));

  std::shared_ptr<const nn::ExecPlan> plan;
  {
    nn::ResetTape();
    w.mutable_grad() = nn::Tensor();
    nn::PlanCapture capture;
    const nn::Var loss = nn::Scale(
        nn::Sum(nn::Square(
            nn::Tanh(nn::MatMul(nn::PlanInput(nn::Tensor::Zeros(2, 4)), w)))),
        0.5);
    nn::Backward(loss);
    plan = capture.Finish({loss});
  }
  ASSERT_TRUE(plan->has_backward());

  Rng data(8);
  for (int i = 0; i < 3; ++i) {
    const nn::Tensor x = nn::Tensor::Uniform(2, 4, -1.0, 1.0, data);

    nn::ResetTape();
    w.mutable_grad() = nn::Tensor();
    const nn::Var eager_loss = nn::Scale(
        nn::Sum(nn::Square(nn::Tanh(nn::MatMul(nn::Var::Constant(x), w)))),
        0.5);
    nn::Backward(eager_loss);
    const double eager_value = eager_loss.value()[0];
    const nn::Tensor eager_grad = w.grad();

    w.mutable_grad() = nn::Tensor();
    const double replayed_value = (*plan->Replay({x})[0])[0];
    EXPECT_EQ(replayed_value, eager_value);
    const nn::Tensor& replayed_grad = w.grad();
    ASSERT_EQ(replayed_grad.size(), eager_grad.size());
    for (int e = 0; e < eager_grad.size(); ++e) {
      EXPECT_EQ(replayed_grad[e], eager_grad[e]);
    }
  }
}

TEST(ExecPlanTest, SteadyStateReplayAllocatesNothing) {
  Rng rng(9);
  const nn::Var w = nn::Var::Param(nn::Tensor::XavierUniform(8, 8, rng));
  const nn::NoGradGuard no_grad;
  nn::ResetTape();
  std::shared_ptr<const nn::ExecPlan> plan;
  {
    nn::PlanCapture capture;
    plan = capture.Finish(
        {nn::Relu(nn::MatMul(nn::PlanInput(nn::Tensor::Zeros(8, 8)), w))});
  }
  Rng data(10);
  const nn::Tensor x = nn::Tensor::Uniform(8, 8, -1.0, 1.0, data);
  for (int i = 0; i < 3; ++i) plan->Replay({x});  // warm the pool + context
  const uint64_t before = nn::AllocEvents();
  for (int i = 0; i < 5; ++i) plan->Replay({x});
  EXPECT_EQ(nn::AllocEvents(), before)
      << "replay must not create arena nodes or miss the tensor pool";
}

// ---- Full BP-DQN update parity ----

rl::AugmentedState RandomState(Rng& rng) {
  rl::AugmentedState s;
  s.h = nn::Tensor::Uniform(rl::kStateHRows, rl::kStateCols, -1.0, 1.0, rng);
  s.f = nn::Tensor::Uniform(rl::kStateFRows, rl::kStateCols, -1.0, 1.0, rng);
  return s;
}

/// Several BP-DQN updates (first captures, the rest replay) with fixed
/// seeds; returns every parameter tensor afterwards.
std::vector<nn::Tensor> BpDqnParams(bool static_plans) {
  rl::PdqnConfig config;
  config.hidden = 16;
  config.batch_size = 8;
  config.warmup_transitions = 8;
  config.buffer_capacity = 64;
  config.batched_updates = true;
  config.static_plans = static_plans;
  Rng init(11);
  auto agent = rl::MakeBpDqnAgent(config, init);
  Rng data(21);
  for (int i = 0; i < 16; ++i) {
    const rl::AugmentedState s = RandomState(data);
    const rl::AugmentedState s2 = RandomState(data);
    rl::AgentAction action;
    action.behavior = static_cast<int>(data.UniformInt(0, 2));
    action.params = nn::Tensor::Uniform(1, rl::kNumBehaviors, -3.0, 3.0, data);
    action.maneuver.lane_change = rl::BehaviorToLaneChange(action.behavior);
    action.maneuver.accel_mps2 = action.params[action.behavior];
    agent->Remember(s, action, data.Uniform(-1.0, 1.0), s2, i % 5 == 0);
  }
  Rng rng(31);
  for (int u = 0; u < 4; ++u) agent->Update(rng);
  std::vector<nn::Tensor> out;
  for (const nn::Var& p : agent->x_net().Params()) out.push_back(p.value());
  for (const nn::Var& p : agent->q_net().Params()) out.push_back(p.value());
  return out;
}

TEST(PlanParityTest, BpDqnUpdatesBitwiseEqualPlansOnVsOff) {
  for (const bool fast_math : {false, true}) {
    FastMathScope scope(fast_math);
    ExpectBitwiseEqual(BpDqnParams(/*static_plans=*/true),
                       BpDqnParams(/*static_plans=*/false));
  }
}

TEST(PlanParityTest, BpDqnGreedyActBitwiseEqualPlansOnVsOff) {
  rl::PdqnConfig config;
  config.hidden = 16;
  Rng init_a(11);
  Rng init_b(11);
  config.static_plans = true;
  auto with_plans = rl::MakeBpDqnAgent(config, init_a);
  config.static_plans = false;
  auto eager = rl::MakeBpDqnAgent(config, init_b);
  Rng data(41);
  Rng rng_a(3);
  Rng rng_b(3);
  for (int i = 0; i < 6; ++i) {  // first iteration captures, the rest replay
    const rl::AugmentedState s = RandomState(data);
    const rl::AgentAction a = with_plans->Act(s, /*epsilon=*/0.0, rng_a);
    const rl::AgentAction b = eager->Act(s, /*epsilon=*/0.0, rng_b);
    EXPECT_EQ(a.behavior, b.behavior) << "step " << i;
    ASSERT_EQ(a.params.size(), b.params.size());
    for (int c = 0; c < a.params.size(); ++c) {
      EXPECT_EQ(a.params[c], b.params[c]) << "step " << i << " param " << c;
    }
  }
}

// ---- LST-GAT epoch + Predict parity ----

perception::PredictionSample RandomSample(Rng& rng, int z) {
  perception::PredictionSample s;
  s.graph.steps.resize(z);
  for (auto& step : s.graph.steps) {
    for (auto& target : step.feat) {
      for (auto& node : target) {
        for (double& f : node) f = rng.Uniform(-1.0, 1.0);
      }
    }
  }
  for (int i = 0; i < perception::kNumAreas; ++i) {
    for (int c = 0; c < 3; ++c) {
      s.graph.target_rel_current[i][c] = rng.Uniform(-1.0, 1.0);
      s.truth.value[i][c] = rng.Uniform(-1.0, 1.0);
    }
    s.truth.valid[i] = rng.Uniform(0.0, 1.0) < 0.7;
  }
  return s;
}

perception::LstGat SmallLstGat(uint64_t seed) {
  perception::LstGatConfig net_config;
  net_config.d_phi1 = 8;
  net_config.d_phi3 = 8;
  net_config.d_lstm = 8;
  Rng init(seed);
  return perception::LstGat(net_config, init);
}

/// Two LST-GAT training epochs (epoch 1 captures each batch shape, epoch 2
/// replays) with fixed seeds; `mixed_depth` plants samples whose history
/// depth differs, forcing every batch onto the eager fallback.
std::vector<nn::Tensor> LstGatParams(bool static_plans, bool mixed_depth) {
  perception::LstGat model = SmallLstGat(17);
  Rng data(18);
  std::vector<perception::PredictionSample> train;
  for (int i = 0; i < 6; ++i) {
    train.push_back(RandomSample(data, mixed_depth && i % 2 == 1 ? 4 : 3));
  }
  perception::PredictionTrainConfig config;
  config.epochs = 2;
  config.batch_size = 3;
  config.batched = true;
  config.static_plans = static_plans;
  perception::TrainPredictor(model, train, config);
  std::vector<nn::Tensor> out;
  for (const nn::Var& p : model.Params()) out.push_back(p.value());
  return out;
}

TEST(PlanParityTest, LstGatEpochBitwiseEqualPlansOnVsOff) {
  for (const bool fast_math : {false, true}) {
    FastMathScope scope(fast_math);
    ExpectBitwiseEqual(LstGatParams(/*static_plans=*/true, false),
                       LstGatParams(/*static_plans=*/false, false));
  }
}

TEST(PlanParityTest, MixedDepthBatchesFallBackToEagerBitwise) {
  // With mixed history depths no batch is plan-eligible; the plans-on run
  // must silently take the eager path and match the plans-off run exactly.
  ExpectBitwiseEqual(LstGatParams(/*static_plans=*/true, true),
                     LstGatParams(/*static_plans=*/false, true));
}

TEST(PlanParityTest, SharedPlanCachePersistsAcrossCallsBitwise) {
  // A caller-owned PredictorPlanCache carries compiled plans from one
  // TrainPredictor call into the next: the second call must replay (not
  // recapture) and still match a cache-less plans-on run bitwise.
  const auto run = [](perception::PredictorPlanCache* cache) {
    perception::LstGat model = SmallLstGat(17);
    Rng data(18);
    std::vector<perception::PredictionSample> train;
    for (int i = 0; i < 6; ++i) train.push_back(RandomSample(data, 3));
    perception::PredictionTrainConfig config;
    config.epochs = 1;
    config.batch_size = 3;
    config.batched = true;
    config.static_plans = true;
    config.plan_cache = cache;
    perception::TrainPredictor(model, train, config);
    perception::TrainPredictor(model, train, config);
    std::vector<nn::Tensor> out;
    for (const nn::Var& p : model.Params()) out.push_back(p.value());
    return out;
  };
  perception::PredictorPlanCache cache;
  const std::vector<nn::Tensor> shared = run(&cache);
  if (nn::PlansEnabled()) {
    EXPECT_FALSE(cache.plans.empty());
  }
  ExpectBitwiseEqual(shared, run(nullptr));
}

TEST(PlanParityTest, PredictBitwiseEqualPlansOnVsOffAcrossDepths) {
  perception::LstGat with_plans = SmallLstGat(17);
  perception::LstGat eager = SmallLstGat(17);
  eager.set_static_plans(false);
  Rng data(19);
  // Repeats per depth exercise replay; two depths exercise the per-z cache.
  for (const int z : {3, 4, 3}) {
    for (int i = 0; i < 2; ++i) {
      const perception::PredictionSample s = RandomSample(data, z);
      const perception::Prediction a = with_plans.Predict(s.graph);
      const perception::Prediction b = eager.Predict(s.graph);
      for (int t = 0; t < perception::kNumAreas; ++t) {
        EXPECT_EQ(a[t].d_lat_m, b[t].d_lat_m) << "z=" << z << " target " << t;
        EXPECT_EQ(a[t].d_lon_m, b[t].d_lon_m) << "z=" << z << " target " << t;
        EXPECT_EQ(a[t].v_rel_mps, b[t].v_rel_mps)
            << "z=" << z << " target " << t;
      }
    }
  }
}

// ---- Concurrent replay from EnvPool workers ----

rl::EnvConfig SmallEnv() {
  rl::EnvConfig c;
  c.sim.road.length_m = 400.0;
  c.sim.spawn.back_margin_m = 120.0;
  c.sim.spawn.front_margin_m = 120.0;
  c.use_prediction = false;
  return c;
}

std::vector<parallel::EnvPool::EpisodeResult> RolloutResults(
    bool static_plans) {
  rl::PdqnConfig config;
  config.hidden = 16;
  config.static_plans = static_plans;
  Rng rng(77);
  auto agent = rl::MakeBpDqnAgent(config, rng);
  parallel::ThreadPool pool(4);
  parallel::EnvPool envs(
      4,
      [](int) {
        return std::make_unique<rl::DrivingEnv>(SmallEnv(), nullptr, 1);
      },
      &pool);
  parallel::EnvPool::RolloutOptions opts;
  opts.seed_base = 55;
  opts.max_steps_per_episode = 40;
  // Greedy episodes: every Act goes through the critic, so both shared Act
  // plans replay concurrently on all four workers.
  return envs.RunEpisodes(*agent, 0, 8, opts);
}

TEST(PlanConcurrencyTest, SharedActPlansAreImmutableUnderEnvPoolReplay) {
  const auto with_plans = RolloutResults(/*static_plans=*/true);
  const auto eager = RolloutResults(/*static_plans=*/false);
  ASSERT_EQ(with_plans.size(), eager.size());
  for (size_t i = 0; i < eager.size(); ++i) {
    EXPECT_EQ(with_plans[i].steps, eager[i].steps) << "episode " << i;
    EXPECT_EQ(with_plans[i].reward_sum, eager[i].reward_sum)
        << "episode " << i;
    EXPECT_EQ(with_plans[i].collision, eager[i].collision) << "episode " << i;
  }
}

// ---- Agent steady-state allocation ----

TEST(PlanAllocTest, SteadyStateAgentUpdateAllocatesNothing) {
  rl::PdqnConfig config;
  config.hidden = 16;
  config.batch_size = 8;
  config.warmup_transitions = 8;
  config.buffer_capacity = 64;
  Rng init(11);
  auto agent = rl::MakeBpDqnAgent(config, init);
  Rng data(21);
  for (int i = 0; i < 16; ++i) {
    const rl::AugmentedState s = RandomState(data);
    const rl::AugmentedState s2 = RandomState(data);
    rl::AgentAction action;
    action.behavior = static_cast<int>(data.UniformInt(0, 2));
    action.params = nn::Tensor::Uniform(1, rl::kNumBehaviors, -3.0, 3.0, data);
    action.maneuver.lane_change = rl::BehaviorToLaneChange(action.behavior);
    action.maneuver.accel_mps2 = action.params[action.behavior];
    agent->Remember(s, action, data.Uniform(-1.0, 1.0), s2, i % 5 == 0);
  }
  Rng rng(31);
  for (int u = 0; u < 4; ++u) agent->Update(rng);  // capture + warm the pool
  const uint64_t before = nn::AllocEvents();
  for (int u = 0; u < 4; ++u) agent->Update(rng);
  EXPECT_EQ(nn::AllocEvents(), before)
      << "steady-state updates must be allocation-free (plans or warm arena)";
}

}  // namespace
}  // namespace head
