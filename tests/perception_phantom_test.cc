// Phantom vehicle construction (paper Sec. III-B, Eqs. 4–6) and neighbor
// selection (Fig. 2) invariants.
#include "perception/phantom.h"

#include <gtest/gtest.h>

#include "perception/neighbor.h"

namespace head::perception {
namespace {

constexpr double kRange = 100.0;

RoadConfig DefaultRoad() { return RoadConfig{}; }

ObservationFrame MakeFrame(const VehicleState& ego,
                           std::vector<sim::VehicleSnapshot> observed) {
  return ObservationFrame{ego, std::move(observed)};
}

HistoryBuffer BufferWith(int z, const ObservationFrame& frame) {
  HistoryBuffer buffer(z);
  for (int i = 0; i < z; ++i) buffer.Push(frame);
  return buffer;
}

TEST(NeighborTest, SelectsNearestPerArea) {
  const VehicleState center{3, 100.0, 20.0};
  std::vector<sim::VehicleSnapshot> candidates = {
      {1, {3, 130.0, 20.0}},  // front (farther)
      {2, {3, 110.0, 20.0}},  // front (nearest)
      {3, {2, 120.0, 20.0}},  // front-left
      {4, {4, 90.0, 20.0}},   // rear-right
      {5, {3, 80.0, 20.0}},   // rear
      {6, {1, 100.0, 20.0}},  // two lanes away → ignored
  };
  const NeighborSet set = SelectNeighbors(candidates, center);
  ASSERT_TRUE(set[kFront].has_value());
  EXPECT_EQ(set[kFront]->id, 2);
  ASSERT_TRUE(set[kFrontLeft].has_value());
  EXPECT_EQ(set[kFrontLeft]->id, 3);
  ASSERT_TRUE(set[kRearRight].has_value());
  EXPECT_EQ(set[kRearRight]->id, 4);
  ASSERT_TRUE(set[kRear].has_value());
  EXPECT_EQ(set[kRear]->id, 5);
  EXPECT_FALSE(set[kRearLeft].has_value());
  EXPECT_FALSE(set[kFrontRight].has_value());
}

TEST(NeighborTest, MirrorAreaPairs) {
  EXPECT_EQ(MirrorArea(kFrontLeft), kRearRight);
  EXPECT_EQ(MirrorArea(kFront), kRear);
  EXPECT_EQ(MirrorArea(kFrontRight), kRearLeft);
  EXPECT_EQ(MirrorArea(kRearRight), kFrontLeft);
}

TEST(HistoryBufferTest, WarmupRepeatsOldestFrame) {
  HistoryBuffer buffer(5);
  buffer.Push(MakeFrame({1, 10.0, 20.0}, {}));
  buffer.Push(MakeFrame({1, 20.0, 20.0}, {}));
  // Logical frames 0..2 are the oldest pushed frame; 3,4 the real ones.
  EXPECT_DOUBLE_EQ(buffer.frame(0).ego.lon_m, 10.0);
  EXPECT_DOUBLE_EQ(buffer.frame(2).ego.lon_m, 10.0);
  EXPECT_DOUBLE_EQ(buffer.frame(3).ego.lon_m, 10.0);
  EXPECT_DOUBLE_EQ(buffer.frame(4).ego.lon_m, 20.0);
}

TEST(HistoryBufferTest, EvictsBeyondCapacity) {
  HistoryBuffer buffer(3);
  for (int i = 0; i < 5; ++i) {
    buffer.Push(MakeFrame({1, 10.0 * i, 20.0}, {}));
  }
  EXPECT_EQ(buffer.size(), 3);
  EXPECT_DOUBLE_EQ(buffer.frame(0).ego.lon_m, 20.0);
  EXPECT_DOUBLE_EQ(buffer.latest().ego.lon_m, 40.0);
}

TEST(FillHistoryTest, InterpolatesInteriorGap) {
  HistoryBuffer buffer(4);
  buffer.Push(MakeFrame({3, 0.0, 20.0}, {{7, {2, 100.0, 10.0}}}));
  buffer.Push(MakeFrame({3, 10.0, 20.0}, {}));  // vehicle 7 occluded
  buffer.Push(MakeFrame({3, 20.0, 20.0}, {}));
  buffer.Push(MakeFrame({3, 30.0, 20.0}, {{7, {2, 130.0, 16.0}}}));
  const auto states = FillHistory(buffer, 7, 0.5);
  ASSERT_EQ(states.size(), 4u);
  EXPECT_DOUBLE_EQ(states[1].lon_m, 110.0);
  EXPECT_DOUBLE_EQ(states[2].lon_m, 120.0);
  EXPECT_DOUBLE_EQ(states[1].v_mps, 12.0);
  EXPECT_DOUBLE_EQ(states[2].v_mps, 14.0);
}

TEST(FillHistoryTest, ExtrapolatesLeadingGapBackwards) {
  HistoryBuffer buffer(3);
  buffer.Push(MakeFrame({3, 0.0, 20.0}, {}));
  buffer.Push(MakeFrame({3, 10.0, 20.0}, {}));
  buffer.Push(MakeFrame({3, 20.0, 20.0}, {{7, {2, 100.0, 10.0}}}));
  const auto states = FillHistory(buffer, 7, 0.5);
  // Constant-velocity backwards: 100 − 10·0.5·k.
  EXPECT_DOUBLE_EQ(states[2].lon_m, 100.0);
  EXPECT_DOUBLE_EQ(states[1].lon_m, 95.0);
  EXPECT_DOUBLE_EQ(states[0].lon_m, 90.0);
}

TEST(PhantomTest, EmptyRoadConstructsRangeAndInherentPhantoms) {
  const RoadConfig road = DefaultRoad();
  const VehicleState ego{1, 500.0, 20.0};  // leftmost lane
  const HistoryBuffer buffer = BufferWith(5, MakeFrame(ego, {}));
  const CompletedScene scene = ConstructPhantoms(buffer, road, kRange);

  // Front-left and rear-left are inherent (ego in lane 1) → lane 0.
  EXPECT_EQ(scene.targets[kFrontLeft].kind, MissingKind::kInherent);
  EXPECT_EQ(scene.targets[kFrontLeft].states.back().lane, 0);
  EXPECT_DOUBLE_EQ(scene.targets[kFrontLeft].states.back().lon_m, 500.0);
  EXPECT_EQ(scene.targets[kRearLeft].kind, MissingKind::kInherent);

  // Front/front-right are range phantoms at ±R (Eq. 4).
  EXPECT_EQ(scene.targets[kFront].kind, MissingKind::kRange);
  EXPECT_DOUBLE_EQ(scene.targets[kFront].states.back().lon_m, 600.0);
  EXPECT_EQ(scene.targets[kFront].states.back().lane, 1);
  EXPECT_EQ(scene.targets[kFrontRight].states.back().lane, 2);
  EXPECT_EQ(scene.targets[kRear].kind, MissingKind::kRange);
  EXPECT_DOUBLE_EQ(scene.targets[kRear].states.back().lon_m, 400.0);

  // Phantom velocities co-move with the ego (Eq. 4/5).
  for (int i = 0; i < kNumAreas; ++i) {
    for (const VehicleState& s : scene.targets[i].states) {
      EXPECT_DOUBLE_EQ(s.v_mps, 20.0);
    }
  }
}

TEST(PhantomTest, PhantomTargetsGetZeroPaddedSurroundingsExceptEgoSlot) {
  const RoadConfig road = DefaultRoad();
  const VehicleState ego{3, 500.0, 20.0};
  const HistoryBuffer buffer = BufferWith(5, MakeFrame(ego, {}));
  const CompletedScene scene = ConstructPhantoms(buffer, road, kRange);
  for (int i = 0; i < kNumAreas; ++i) {
    ASSERT_TRUE(scene.targets[i].is_phantom());
    for (int j = 0; j < kNumAreas; ++j) {
      if (j == MirrorArea(i)) {
        EXPECT_EQ(scene.surroundings[i][j].kind, MissingKind::kEgo);
        EXPECT_EQ(scene.surroundings[i][j].id, kEgoVehicleId);
      } else {
        EXPECT_EQ(scene.surroundings[i][j].kind, MissingKind::kZeroPad);
      }
    }
  }
}

TEST(PhantomTest, OcclusionPhantomMirroredBeyondTarget) {
  const RoadConfig road = DefaultRoad();
  const VehicleState ego{3, 500.0, 20.0};
  // One real front vehicle 40 m ahead; the slot beyond it (its own front)
  // is missing → occlusion phantom at double distance (Eq. 6, case (2,2)).
  const VehicleState front{3, 540.0, 18.0};
  const HistoryBuffer buffer =
      BufferWith(5, MakeFrame(ego, {{7, front}}));
  const CompletedScene scene = ConstructPhantoms(buffer, road, kRange);
  ASSERT_EQ(scene.targets[kFront].kind, MissingKind::kNone);
  const VehicleHistory& occ = scene.surroundings[kFront][kFront];
  EXPECT_EQ(occ.kind, MissingKind::kOcclusion);
  EXPECT_EQ(occ.states.back().lane, 3);
  EXPECT_DOUBLE_EQ(occ.states.back().lon_m, 540.0 + 40.0);
  EXPECT_DOUBLE_EQ(occ.states.back().v_mps, 18.0);
}

TEST(PhantomTest, EgoFillsMirrorSlotOfRealTarget) {
  const RoadConfig road = DefaultRoad();
  const VehicleState ego{3, 500.0, 20.0};
  const VehicleState front{3, 540.0, 18.0};
  const HistoryBuffer buffer =
      BufferWith(5, MakeFrame(ego, {{7, front}}));
  const CompletedScene scene = ConstructPhantoms(buffer, road, kRange);
  const VehicleHistory& rear_of_front =
      scene.surroundings[kFront][MirrorArea(kFront)];
  EXPECT_EQ(rear_of_front.kind, MissingKind::kEgo);
  EXPECT_DOUBLE_EQ(rear_of_front.states.back().lon_m, 500.0);
}

TEST(PhantomTest, RealNeighborsArePreferredOverPhantoms) {
  const RoadConfig road = DefaultRoad();
  const VehicleState ego{3, 500.0, 20.0};
  std::vector<sim::VehicleSnapshot> observed = {
      {7, {3, 540.0, 18.0}},   // front target
      {8, {3, 580.0, 17.0}},   // front of front — real, no occlusion phantom
  };
  const HistoryBuffer buffer = BufferWith(5, MakeFrame(ego, observed));
  const CompletedScene scene = ConstructPhantoms(buffer, road, kRange);
  EXPECT_EQ(scene.surroundings[kFront][kFront].kind, MissingKind::kNone);
  EXPECT_EQ(scene.surroundings[kFront][kFront].id, 8);
}

TEST(PhantomTest, WithoutPhantomsEverythingMissingIsZeroPadded) {
  const RoadConfig road = DefaultRoad();
  const VehicleState ego{1, 500.0, 20.0};
  const HistoryBuffer buffer = BufferWith(5, MakeFrame(ego, {}));
  const CompletedScene scene =
      ConstructPhantoms(buffer, road, kRange, /*use_phantoms=*/false);
  for (int i = 0; i < kNumAreas; ++i) {
    EXPECT_EQ(scene.targets[i].kind, MissingKind::kZeroPad);
  }
}

TEST(PhantomTest, AllTargetsHaveFullHistories) {
  const RoadConfig road = DefaultRoad();
  const VehicleState ego{4, 500.0, 20.0};
  std::vector<sim::VehicleSnapshot> observed = {
      {7, {4, 540.0, 18.0}},
      {8, {3, 520.0, 21.0}},
      {9, {5, 470.0, 19.0}},
  };
  const HistoryBuffer buffer = BufferWith(5, MakeFrame(ego, observed));
  const CompletedScene scene = ConstructPhantoms(buffer, road, kRange);
  for (int i = 0; i < kNumAreas; ++i) {
    EXPECT_EQ(scene.targets[i].states.size(), 5u) << "target " << i;
    for (int j = 0; j < kNumAreas; ++j) {
      const VehicleHistory& s = scene.surroundings[i][j];
      if (s.kind != MissingKind::kZeroPad) {
        EXPECT_EQ(s.states.size(), 5u) << "surrounding " << i << "," << j;
      }
    }
  }
}

}  // namespace
}  // namespace head::perception
