// Gradient/value parity between the vectorized minibatch training paths and
// the per-sample reference paths they replaced: identically-seeded learners
// must end up with the same parameters (within fp accumulation-order noise,
// ≪ 1e-9) whichever path they train through.
#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "perception/lst_gat.h"
#include "perception/trainer.h"
#include "rl/nets.h"
#include "rl/pdqn_agent.h"

namespace head {
namespace {

constexpr double kTol = 1e-9;

void ExpectParamsNear(const std::vector<nn::Var>& a,
                      const std::vector<nn::Var>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t p = 0; p < a.size(); ++p) {
    const nn::Tensor& ta = a[p].value();
    const nn::Tensor& tb = b[p].value();
    ASSERT_EQ(ta.size(), tb.size());
    for (int i = 0; i < ta.size(); ++i) {
      ASSERT_NEAR(ta[i], tb[i], kTol) << "param " << p << " element " << i;
    }
  }
}

rl::AugmentedState RandomState(Rng& rng) {
  rl::AugmentedState s;
  s.h = nn::Tensor::Uniform(rl::kStateHRows, rl::kStateCols, -1.0, 1.0, rng);
  s.f = nn::Tensor::Uniform(rl::kStateFRows, rl::kStateCols, -1.0, 1.0, rng);
  return s;
}

// Trains two identically-initialized agents on identical transitions with
// identical rng streams — one through the batched update path, one through
// the per-sample reference — and requires parameter agreement.
void ExpectUpdateParity(
    const std::function<std::unique_ptr<rl::PdqnAgent>(const rl::PdqnConfig&,
                                                       Rng&)>& make) {
  rl::PdqnConfig config;
  config.hidden = 16;
  config.batch_size = 8;
  config.warmup_transitions = 8;
  config.buffer_capacity = 128;

  rl::PdqnConfig batched = config;
  batched.batched_updates = true;
  rl::PdqnConfig reference = config;
  reference.batched_updates = false;

  Rng init_a(11);
  Rng init_b(11);
  auto agent_a = make(batched, init_a);
  auto agent_b = make(reference, init_b);

  Rng data(21);
  Rng rng_a(31);
  Rng rng_b(31);
  for (int i = 0; i < 40; ++i) {
    const rl::AugmentedState s = RandomState(data);
    const rl::AugmentedState s2 = RandomState(data);
    rl::AgentAction action;
    action.behavior = static_cast<int>(data.UniformInt(0, 2));
    action.params = nn::Tensor::Uniform(1, rl::kNumBehaviors, -3.0, 3.0, data);
    action.maneuver.lane_change = rl::BehaviorToLaneChange(action.behavior);
    action.maneuver.accel_mps2 = action.params[action.behavior];
    const double reward = data.Uniform(-1.0, 1.0);
    const bool terminal = i % 7 == 0;
    agent_a->Remember(s, action, reward, s2, terminal);
    agent_b->Remember(s, action, reward, s2, terminal);
    agent_a->Update(rng_a);
    agent_b->Update(rng_b);
  }

  ExpectParamsNear(agent_a->x_net().Params(), agent_b->x_net().Params());
  ExpectParamsNear(agent_a->q_net().Params(), agent_b->q_net().Params());
}

TEST(RlBatchedParityTest, BpDqnUpdatesMatchPerSample) {
  ExpectUpdateParity([](const rl::PdqnConfig& c, Rng& rng) {
    return rl::MakeBpDqnAgent(c, rng);
  });
}

TEST(RlBatchedParityTest, PDqnUpdatesMatchPerSample) {
  ExpectUpdateParity([](const rl::PdqnConfig& c, Rng& rng) {
    return rl::MakePDqnAgent(c, rng);
  });
}

TEST(RlBatchedParityTest, BatchedForwardMatchesPerSampleRows) {
  Rng init(5);
  rl::PdqnConfig config;
  config.hidden = 16;
  auto agent = rl::MakeBpDqnAgent(config, init);
  Rng data(6);
  std::vector<rl::AugmentedState> states;
  for (int i = 0; i < 5; ++i) states.push_back(RandomState(data));
  std::vector<const rl::AugmentedState*> batch;
  for (const auto& s : states) batch.push_back(&s);

  const nn::Var x_batch = agent->x_net().ForwardBatch(batch);
  const nn::Var q_batch = agent->q_net().ForwardBatch(batch, x_batch);
  ASSERT_EQ(x_batch.value().rows(), 5);
  ASSERT_EQ(q_batch.value().rows(), 5);
  for (int i = 0; i < 5; ++i) {
    const nn::Tensor x_i = agent->ActionParams(states[i]);
    const nn::Tensor q_i = agent->QValues(states[i], x_i);
    for (int c = 0; c < rl::kNumBehaviors; ++c) {
      EXPECT_DOUBLE_EQ(x_batch.value().At(i, c), x_i.At(0, c));
      EXPECT_DOUBLE_EQ(q_batch.value().At(i, c), q_i.At(0, c));
    }
  }
}

perception::PredictionSample RandomSample(Rng& rng, int z, bool any_valid) {
  perception::PredictionSample s;
  s.graph.steps.resize(z);
  for (auto& step : s.graph.steps) {
    for (auto& target : step.feat) {
      for (auto& node : target) {
        for (double& f : node) f = rng.Uniform(-1.0, 1.0);
      }
    }
  }
  for (int i = 0; i < perception::kNumAreas; ++i) {
    for (int c = 0; c < 3; ++c) {
      s.graph.target_rel_current[i][c] = rng.Uniform(-1.0, 1.0);
      s.truth.value[i][c] = rng.Uniform(-1.0, 1.0);
    }
    s.truth.valid[i] = any_valid && rng.Uniform(0.0, 1.0) < 0.7;
  }
  return s;
}

TEST(PerceptionBatchedParityTest, LstGatBatchedForwardMatchesPerSample) {
  Rng init(9);
  perception::LstGatConfig config;
  config.d_phi1 = 8;
  config.d_phi3 = 8;
  config.d_lstm = 8;
  perception::LstGat model(config, init);
  Rng data(10);
  std::vector<perception::PredictionSample> samples;
  for (int i = 0; i < 3; ++i) samples.push_back(RandomSample(data, 4, true));
  std::vector<const perception::StGraph*> graphs;
  for (const auto& s : samples) graphs.push_back(&s.graph);

  const nn::Var batch = model.ForwardScaledBatch(graphs);
  ASSERT_EQ(batch.value().rows(), 3 * perception::kNumAreas);
  for (int s = 0; s < 3; ++s) {
    const nn::Var single = model.ForwardScaled(samples[s].graph);
    for (int i = 0; i < perception::kNumAreas; ++i) {
      for (int c = 0; c < 3; ++c) {
        EXPECT_DOUBLE_EQ(
            batch.value().At(s * perception::kNumAreas + i, c),
            single.value().At(i, c));
      }
    }
  }
}

TEST(PerceptionBatchedParityTest, MixedDepthBatchFallsBackCorrectly) {
  Rng init(9);
  perception::LstGatConfig config;
  config.d_phi1 = 8;
  config.d_phi3 = 8;
  config.d_lstm = 8;
  perception::LstGat model(config, init);
  Rng data(12);
  const perception::PredictionSample a = RandomSample(data, 3, true);
  const perception::PredictionSample b = RandomSample(data, 5, true);
  const nn::Var batch = model.ForwardScaledBatch({&a.graph, &b.graph});
  ASSERT_EQ(batch.value().rows(), 2 * perception::kNumAreas);
  const nn::Var sa = model.ForwardScaled(a.graph);
  const nn::Var sb = model.ForwardScaled(b.graph);
  for (int i = 0; i < perception::kNumAreas; ++i) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(batch.value().At(i, c), sa.value().At(i, c));
      EXPECT_DOUBLE_EQ(batch.value().At(perception::kNumAreas + i, c),
                       sb.value().At(i, c));
    }
  }
}

TEST(PerceptionBatchedParityTest, TrainingMatchesPerSamplePath) {
  perception::LstGatConfig net_config;
  net_config.d_phi1 = 8;
  net_config.d_phi3 = 8;
  net_config.d_lstm = 8;
  Rng init_a(17);
  Rng init_b(17);
  perception::LstGat model_a(net_config, init_a);
  perception::LstGat model_b(net_config, init_b);

  Rng data(18);
  std::vector<perception::PredictionSample> train;
  for (int i = 0; i < 11; ++i) {
    // Include one fully-masked sample: both paths must give it zero loss
    // and zero gradient.
    train.push_back(RandomSample(data, 3, /*any_valid=*/i != 4));
  }

  perception::PredictionTrainConfig config;
  config.epochs = 3;
  config.batch_size = 4;  // uneven final batch of 3
  perception::PredictionTrainConfig batched = config;
  batched.batched = true;
  perception::PredictionTrainConfig reference = config;
  reference.batched = false;

  const auto result_a =
      perception::TrainPredictor(model_a, train, batched);
  const auto result_b =
      perception::TrainPredictor(model_b, train, reference);

  ASSERT_EQ(result_a.epoch_losses.size(), result_b.epoch_losses.size());
  for (size_t e = 0; e < result_a.epoch_losses.size(); ++e) {
    EXPECT_NEAR(result_a.epoch_losses[e], result_b.epoch_losses[e], kTol);
  }
  ExpectParamsNear(model_a.Params(), model_b.Params());
}

}  // namespace
}  // namespace head
