// Evaluation harness: metric aggregation, table printing, episode runner.
#include <sstream>

#include <gtest/gtest.h>

#include "decision/idm_lc.h"
#include "eval/episode_runner.h"
#include "eval/table.h"
#include "eval/timer.h"

namespace head::eval {
namespace {

TEST(MetricsTest, AggregationAverages) {
  EpisodeRecord a;
  a.completed = true;
  a.driving_time_s = 100.0;
  a.mean_v_mps = 20.0;
  a.mean_jerk_mps2 = 0.4;
  a.min_ttc_s = 3.0;
  a.rear_decel_events = 10;
  a.mean_rear_decel_mps = 0.2;
  a.mean_follower_dt_s = 150.0;
  a.followers = 5;
  EpisodeRecord b = a;
  b.driving_time_s = 140.0;
  b.min_ttc_s = 5.0;
  b.rear_decel_events = 20;
  const AggregateMetrics m = AggregateMetrics::FromRecords({a, b});
  EXPECT_DOUBLE_EQ(m.avg_dt_a_s, 120.0);
  EXPECT_DOUBLE_EQ(m.min_ttc_a_s, 4.0);
  EXPECT_DOUBLE_EQ(m.avg_num_ca, 15.0);
  EXPECT_EQ(m.completed, 2);
  EXPECT_EQ(m.collisions, 0);
}

TEST(MetricsTest, IncompleteEpisodesExcludedFromDtA) {
  EpisodeRecord done;
  done.completed = true;
  done.driving_time_s = 100.0;
  EpisodeRecord crash;
  crash.collided = true;
  crash.driving_time_s = 10.0;
  crash.min_ttc_s = -1.0;            // never valid
  crash.mean_rear_decel_mps = -1.0;  // no rear vehicle
  const AggregateMetrics m = AggregateMetrics::FromRecords({done, crash});
  EXPECT_DOUBLE_EQ(m.avg_dt_a_s, 100.0);
  EXPECT_EQ(m.collisions, 1);
}

TEST(MetricsTest, EmptyRecordsAreSafe) {
  const AggregateMetrics m = AggregateMetrics::FromRecords({});
  EXPECT_EQ(m.episodes, 0);
  EXPECT_DOUBLE_EQ(m.avg_dt_a_s, 0.0);
}

TEST(TableTest, AlignsColumnsAndPrintsAllRows) {
  TablePrinter table({"Method", "Metric"});
  table.AddRow({"IDM-LC", "1.25"});
  table.AddRow({"a-very-long-method-name", "2"});
  std::ostringstream os;
  table.Print(os, "Title");
  const std::string out = os.str();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("IDM-LC"), std::string::npos);
  EXPECT_NE(out.find("a-very-long-method-name"), std::string::npos);
  // Every data line has the same width.
  std::istringstream lines(out);
  std::string line;
  size_t width = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '|') continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
}

TEST(TimerTest, MeasuresRoughly) {
  const double ms = MeasureAvgMillis(
      [] {
        volatile double x = 0;
        for (int i = 0; i < 10000; ++i) x += i;
      },
      5);
  EXPECT_GT(ms, 0.0);
  EXPECT_LT(ms, 100.0);
}

TEST(EpisodeRunnerTest, RuleBasedPolicyProducesSaneMetrics) {
  RunnerConfig config;
  config.sim.road.length_m = 400.0;
  config.sim.spawn.back_margin_m = 120.0;
  config.sim.spawn.front_margin_m = 120.0;
  config.episodes = 2;
  decision::IdmLcPolicy policy(
      decision::RuleBasedConfig::ForRoad(config.sim.road));
  const AggregateMetrics m = RunPolicy(policy, config);
  EXPECT_EQ(m.episodes, 2);
  EXPECT_GT(m.completed, 0);
  EXPECT_GT(m.avg_v_a_mps, 2.0);
  EXPECT_LT(m.avg_v_a_mps, 25.0);
  EXPECT_GT(m.avg_dt_a_s, 10.0);
  if (m.avg_dt_c_s > 0.0) {
    EXPECT_GT(m.avg_dt_c_s, 10.0);
  }
}

TEST(EpisodeRunnerTest, DeterministicForSameSeed) {
  RunnerConfig config;
  config.sim.road.length_m = 300.0;
  config.sim.spawn.back_margin_m = 100.0;
  config.sim.spawn.front_margin_m = 100.0;
  config.episodes = 1;
  decision::IdmLcPolicy p1(
      decision::RuleBasedConfig::ForRoad(config.sim.road));
  decision::IdmLcPolicy p2(
      decision::RuleBasedConfig::ForRoad(config.sim.road));
  const EpisodeRecord a = RunEpisode(p1, config, 5);
  const EpisodeRecord b = RunEpisode(p2, config, 5);
  EXPECT_DOUBLE_EQ(a.driving_time_s, b.driving_time_s);
  EXPECT_DOUBLE_EQ(a.mean_v_mps, b.mean_v_mps);
  EXPECT_EQ(a.rear_decel_events, b.rear_decel_events);
}

}  // namespace
}  // namespace head::eval
