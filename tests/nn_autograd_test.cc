// Finite-difference gradient checks for every autograd op and for composed
// networks (MLP, LSTM, GAT-style attention block).
#include "nn/autograd.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/lstm.h"

namespace head::nn {
namespace {

// Numerically verifies d(loss)/d(param) for a scalar-valued builder that
// reconstructs the graph from the current parameter values on every call.
void CheckGradient(Var param, const std::function<Var()>& build_loss,
                   double eps = 1e-6, double tol = 1e-5) {
  param.ZeroGrad();
  Var loss = build_loss();
  Backward(loss);
  const Tensor analytic = param.grad();
  Tensor& value = param.mutable_value();
  for (int i = 0; i < value.size(); ++i) {
    const double saved = value[i];
    value[i] = saved + eps;
    const double up = build_loss().value()[0];
    value[i] = saved - eps;
    const double down = build_loss().value()[0];
    value[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
        << "param element " << i;
  }
}

Tensor Arange(int rows, int cols, double scale = 0.1, double shift = -0.35) {
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) t[i] = scale * i + shift;
  return t;
}

TEST(AutogradTest, MatMulGradient) {
  Var a = Var::Param(Arange(2, 3));
  Var b = Var::Param(Arange(3, 4, 0.2, -0.9));
  auto loss = [&] { return Sum(MatMul(a, b)); };
  CheckGradient(a, loss);
  b.ZeroGrad();
  CheckGradient(b, loss);
}

TEST(AutogradTest, AddSubMulGradient) {
  Var a = Var::Param(Arange(2, 2));
  Var b = Var::Param(Arange(2, 2, 0.3, 0.1));
  CheckGradient(a, [&] { return Sum(Add(a, b)); });
  a.ZeroGrad();
  CheckGradient(a, [&] { return Sum(Sub(a, b)); });
  a.ZeroGrad();
  CheckGradient(a, [&] { return Sum(Mul(a, b)); });
  b.ZeroGrad();
  CheckGradient(b, [&] { return Sum(Mul(a, b)); });
}

TEST(AutogradTest, ScaleAndAddScalarGradient) {
  Var a = Var::Param(Arange(3, 2));
  CheckGradient(a, [&] { return Sum(Scale(a, -2.5)); });
  a.ZeroGrad();
  CheckGradient(a, [&] { return Sum(AddScalar(a, 3.0)); });
}

TEST(AutogradTest, AddRowBroadcastGradient) {
  Var a = Var::Param(Arange(3, 4));
  Var row = Var::Param(Arange(1, 4, 0.2, 0.0));
  auto loss = [&] { return Sum(Square(AddRowBroadcast(a, row))); };
  CheckGradient(a, loss);
  row.ZeroGrad();
  CheckGradient(row, loss);
}

TEST(AutogradTest, ActivationGradients) {
  // Avoid points near the ReLU kink (finite differences are wrong there).
  Tensor init = Arange(2, 3, 0.37, -0.83);
  Var a = Var::Param(init);
  CheckGradient(a, [&] { return Sum(Square(Relu(a))); });
  a.ZeroGrad();
  CheckGradient(a, [&] { return Sum(Square(LeakyRelu(a, 0.2))); });
  a.ZeroGrad();
  CheckGradient(a, [&] { return Sum(Square(Tanh(a))); });
  a.ZeroGrad();
  CheckGradient(a, [&] { return Sum(Square(Sigmoid(a))); });
}

TEST(AutogradTest, SoftmaxRowsGradient) {
  Var a = Var::Param(Arange(2, 4, 0.4, -0.7));
  Var weights = Var::Constant(Arange(2, 4, 0.13, -0.2));
  CheckGradient(a, [&] { return Sum(Mul(SoftmaxRows(a), weights)); });
}

TEST(AutogradTest, SoftmaxRowsSumsToOne) {
  Var a = Var::Constant(Arange(3, 5, 1.1, -2.0));
  const Tensor y = SoftmaxRows(a).value();
  for (int r = 0; r < y.rows(); ++r) {
    double s = 0.0;
    for (int c = 0; c < y.cols(); ++c) {
      s += y.At(r, c);
      EXPECT_GT(y.At(r, c), 0.0);
    }
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(AutogradTest, ConcatSliceReshapeGradient) {
  Var a = Var::Param(Arange(2, 3));
  Var b = Var::Param(Arange(2, 2, 0.3, 0.2));
  CheckGradient(a, [&] { return Sum(Square(ConcatCols({a, b}))); });
  a.ZeroGrad();
  Var c = Var::Param(Arange(1, 3, 0.25, -0.1));
  CheckGradient(a, [&] { return Sum(Square(ConcatRows({a, c}))); });
  a.ZeroGrad();
  CheckGradient(a, [&] { return Sum(Square(SliceCols(a, 1, 3))); });
  a.ZeroGrad();
  CheckGradient(a, [&] { return Sum(Square(SliceRows(a, 0, 1))); });
  a.ZeroGrad();
  CheckGradient(a, [&] { return Sum(Square(Reshape(a, 3, 2))); });
}

TEST(AutogradTest, MeanAndMseGradient) {
  Var a = Var::Param(Arange(2, 3));
  CheckGradient(a, [&] { return Mean(Square(a)); });
  a.ZeroGrad();
  Var target = Var::Constant(Arange(2, 3, 0.2, 0.4));
  CheckGradient(a, [&] { return MseLoss(a, target); });
}

TEST(AutogradTest, GradientAccumulatesAcrossReusedVar) {
  // y = a*a uses `a` twice: dy/da = 2a.
  Var a = Var::Param(Tensor::Full(1, 1, 3.0));
  Var loss = Sum(Mul(a, a));
  Backward(loss);
  EXPECT_NEAR(a.grad()[0], 6.0, 1e-12);
}

TEST(AutogradTest, ConstantsReceiveNoGraph) {
  Var a = Var::Constant(Tensor::Full(2, 2, 1.0));
  Var b = Var::Constant(Tensor::Full(2, 2, 2.0));
  Var c = Add(a, b);
  EXPECT_FALSE(c.requires_grad());
}

TEST(AutogradTest, MlpGradient) {
  Rng rng(42);
  Mlp mlp({3, 5, 2}, Mlp::Activation::kTanh, rng);
  Var x = Var::Constant(Arange(4, 3, 0.21, -0.4));
  Var target = Var::Constant(Arange(4, 2, 0.1, 0.0));
  auto loss = [&] { return MseLoss(mlp.Forward(x), target); };
  for (Var p : mlp.Params()) {
    p.ZeroGrad();
    CheckGradient(p, loss, 1e-6, 1e-4);
  }
}

TEST(AutogradTest, LstmGradient) {
  Rng rng(7);
  LstmCell cell(3, 4, rng);
  std::vector<Var> inputs;
  for (int k = 0; k < 3; ++k) {
    inputs.push_back(Var::Constant(Arange(2, 3, 0.17 + 0.05 * k, -0.3)));
  }
  Var target = Var::Constant(Arange(2, 4, 0.09, 0.1));
  auto loss = [&] {
    LstmState s = cell.InitialState(2);
    for (const Var& x : inputs) s = cell.Forward(x, s);
    return MseLoss(s.h, target);
  };
  for (Var p : cell.Params()) {
    p.ZeroGrad();
    CheckGradient(p, loss, 1e-6, 1e-4);
  }
}

TEST(AutogradTest, AttentionBlockGradient) {
  // The LST-GAT attention pattern: softmax(LeakyReLU([bcast ‖ H]·w))·V.
  Rng rng(11);
  Var h = Var::Constant(Arange(7, 4, 0.11, -0.35));
  Var phi1 = Var::Param(Tensor::XavierUniform(4, 6, rng));
  Var phi2 = Var::Param(Tensor::XavierUniform(12, 1, rng));
  Var phi3 = Var::Param(Tensor::XavierUniform(4, 6, rng));
  Var ones = Var::Constant(Tensor::Full(7, 1, 1.0));
  auto loss = [&] {
    Var emb = MatMul(h, phi1);
    Var target_row = SliceRows(emb, 0, 1);
    Var cat = ConcatCols({MatMul(ones, target_row), emb});
    Var scores = LeakyRelu(MatMul(cat, phi2), 0.2);
    Var alpha = SoftmaxRows(Reshape(scores, 1, 7));
    Var out = MatMul(alpha, MatMul(h, phi3));
    return Sum(Square(out));
  };
  for (Var p : {phi1, phi2, phi3}) {
    p.ZeroGrad();
    CheckGradient(p, loss, 1e-6, 1e-4);
  }
}

}  // namespace
}  // namespace head::nn
