#include "sim/road.h"

#include <gtest/gtest.h>

namespace head::sim {
namespace {

std::vector<VehicleSnapshot> MakeFleet() {
  return {
      {1, {1, 50.0, 20.0}},  {2, {1, 100.0, 21.0}}, {3, {1, 150.0, 19.0}},
      {4, {2, 80.0, 22.0}},  {5, {2, 120.0, 18.0}}, {6, {3, 60.0, 20.0}},
  };
}

TEST(RoadViewTest, LeaderFindsNearestAhead) {
  RoadView view(MakeFleet());
  const VehicleSnapshot* l = view.Leader(1, 60.0);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->id, 2);
  l = view.Leader(1, 120.0);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->id, 3);
  EXPECT_EQ(view.Leader(1, 150.0), nullptr);  // strictly ahead
  EXPECT_EQ(view.Leader(4, 0.0), nullptr);    // empty lane
}

TEST(RoadViewTest, FollowerFindsNearestBehindOrAt) {
  RoadView view(MakeFleet());
  const VehicleSnapshot* f = view.Follower(1, 120.0);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->id, 2);
  // A vehicle exactly at the query lon counts as follower.
  f = view.Follower(1, 100.0);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->id, 2);
  EXPECT_EQ(view.Follower(1, 40.0), nullptr);
}

TEST(RoadViewTest, ExclusionSkipsSelf) {
  RoadView view(MakeFleet());
  const VehicleSnapshot* f = view.Follower(1, 100.0, /*exclude_id=*/2);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->id, 1);
  const VehicleSnapshot* l = view.Leader(1, 99.0, /*exclude_id=*/2);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->id, 3);
}

TEST(RoadViewTest, FindById) {
  RoadView view(MakeFleet());
  const VehicleSnapshot* v = view.Find(5);
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->state.lon_m, 120.0);
  EXPECT_EQ(view.Find(99), nullptr);
}

TEST(RoadViewTest, VehiclesSortedByLaneThenLon) {
  RoadView view(MakeFleet());
  const auto& v = view.vehicles();
  for (size_t i = 1; i < v.size(); ++i) {
    const bool ordered =
        v[i - 1].state.lane < v[i].state.lane ||
        (v[i - 1].state.lane == v[i].state.lane &&
         v[i - 1].state.lon_m <= v[i].state.lon_m);
    EXPECT_TRUE(ordered);
  }
}

TEST(RoadViewTest, EmptyViewIsSafe) {
  RoadView view({});
  EXPECT_EQ(view.Leader(1, 0.0), nullptr);
  EXPECT_EQ(view.Follower(1, 0.0), nullptr);
  EXPECT_EQ(view.Find(1), nullptr);
}

TEST(GapTest, BumperToBumper) {
  // Leader at 100, follower at 90, both 5 m long → 5 m gap.
  EXPECT_DOUBLE_EQ(Gap(100.0, 90.0), 10.0 - kVehicleLengthM);
  EXPECT_LT(Gap(94.0, 90.0), 0.0);  // overlap
}

}  // namespace
}  // namespace head::sim
