// Scenario presets and the episode trace recorder.
#include <sstream>

#include <gtest/gtest.h>

#include "decision/idm_lc.h"
#include "eval/trace.h"
#include "sim/scenario.h"

namespace head {
namespace {

TEST(ScenarioTest, NamesRoundTrip) {
  for (const std::string& name : sim::ScenarioNames()) {
    const sim::SimConfig config = sim::ScenarioByName(name);
    EXPECT_GT(config.road.length_m, 0.0) << name;
  }
}

TEST(ScenarioTest, UnknownNameAborts) {
  EXPECT_DEATH(sim::ScenarioByName("nope"), "unknown scenario");
}

TEST(ScenarioTest, BottleneckBlocksRequestedLanes) {
  const sim::SimConfig config = sim::BottleneckScenario(800.0, 2, 400.0, 100.0);
  ASSERT_FALSE(config.static_obstacles.empty());
  for (const sim::Vehicle& v : config.static_obstacles) {
    EXPECT_TRUE(v.stationary);
    EXPECT_GE(v.state.lane, config.road.num_lanes - 1);
    EXPECT_GE(v.state.lon_m, 400.0);
    EXPECT_LE(v.state.lon_m, 500.0 + 1e-9);
    EXPECT_DOUBLE_EQ(v.state.v_mps, 0.0);
  }
}

TEST(ScenarioTest, StaticObstaclesNeverMove) {
  sim::SimConfig config = sim::BottleneckScenario(500.0, 1, 250.0, 60.0);
  config.spawn.back_margin_m = 100.0;
  config.spawn.front_margin_m = 100.0;
  sim::Simulation sim(config, 3);
  std::vector<double> lons;
  for (const sim::Vehicle& v : sim.conventional_vehicles()) {
    if (v.stationary) lons.push_back(v.state.lon_m);
  }
  ASSERT_FALSE(lons.empty());
  for (int i = 0; i < 20 && sim.status() == sim::EpisodeStatus::kRunning;
       ++i) {
    sim.Step(Maneuver{LaneChange::kKeep, 0.0});
  }
  size_t k = 0;
  for (const sim::Vehicle& v : sim.conventional_vehicles()) {
    if (!v.stationary) continue;
    EXPECT_DOUBLE_EQ(v.state.lon_m, lons[k++]);
    EXPECT_DOUBLE_EQ(v.state.v_mps, 0.0);
  }
}

TEST(ScenarioTest, TrafficQueuesBehindBottleneck) {
  // After a while, vehicles in the closed lane upstream of the closure are
  // slower than free-flow — the shockwave the intro describes.
  sim::SimConfig config = sim::BottleneckScenario(800.0, 2, 400.0, 100.0);
  config.spawn.back_margin_m = 150.0;
  config.spawn.front_margin_m = 150.0;
  sim::Simulation sim(config, 9);
  for (int i = 0; i < 120 && sim.status() == sim::EpisodeStatus::kRunning;
       ++i) {
    sim.Step(Maneuver{LaneChange::kKeep, -1.0});
  }
  double queued_v_sum = 0.0;
  int queued = 0;
  for (const sim::Vehicle& v : sim.conventional_vehicles()) {
    if (v.stationary) continue;
    if (v.state.lane >= config.road.num_lanes - 1 && v.state.lon_m > 250.0 &&
        v.state.lon_m < 400.0) {
      queued_v_sum += v.state.v_mps;
      ++queued;
    }
  }
  if (queued > 0) {
    EXPECT_LT(queued_v_sum / queued, 15.0);
  }
}

eval::TraceConfig SmallTraceConfig() {
  eval::TraceConfig config;
  config.sim.road.length_m = 300.0;
  config.sim.spawn.back_margin_m = 100.0;
  config.sim.spawn.front_margin_m = 100.0;
  return config;
}

TEST(TraceTest, RecordsEveryStepWithRewards) {
  const eval::TraceConfig config = SmallTraceConfig();
  decision::IdmLcPolicy policy(
      decision::RuleBasedConfig::ForRoad(config.sim.road));
  const eval::EpisodeTrace trace = eval::RecordEpisode(policy, config, 7);
  ASSERT_FALSE(trace.steps.empty());
  EXPECT_NE(trace.final_status, sim::EpisodeStatus::kRunning);
  EXPECT_EQ(trace.policy_name, "IDM-LC");
  double t_prev = 0.0;
  for (const eval::TraceStep& s : trace.steps) {
    EXPECT_GT(s.time_s, t_prev);
    t_prev = s.time_s;
    EXPECT_LE(s.reward.total, 0.8 + 1e-9);
    EXPECT_GE(s.reward.total, -4.5);
  }
}

TEST(TraceTest, CsvHasHeaderAndOneRowPerStep) {
  const eval::TraceConfig config = SmallTraceConfig();
  decision::IdmLcPolicy policy(
      decision::RuleBasedConfig::ForRoad(config.sim.road));
  const eval::EpisodeTrace trace = eval::RecordEpisode(policy, config, 7);
  std::ostringstream os;
  eval::WriteTraceCsv(trace, os);
  const std::string csv = os.str();
  size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, trace.steps.size() + 1);
  EXPECT_EQ(csv.rfind("time_s,lane,", 0), 0u);
}

TEST(TraceTest, RenderMarksEgoOncePerFrame) {
  const eval::TraceConfig config = SmallTraceConfig();
  decision::IdmLcPolicy policy(
      decision::RuleBasedConfig::ForRoad(config.sim.road));
  const eval::EpisodeTrace trace = eval::RecordEpisode(policy, config, 7);
  const std::string frame =
      eval::RenderStep(trace.steps.front(), config.sim.road);
  size_t egos = 0;
  for (char c : frame) egos += c == 'E';
  EXPECT_EQ(egos, 1u);
  // One row per lane plus the status line.
  size_t lines = 0;
  for (char c : frame) lines += c == '\n';
  EXPECT_EQ(lines, static_cast<size_t>(config.sim.road.num_lanes) + 1);
}

}  // namespace
}  // namespace head
