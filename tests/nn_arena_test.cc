// Arena-tape and tensor-pool semantics (ISSUE 5): a training update must be
// bitwise identical whether it runs on a cold arena (first tape ever on the
// thread) or a warm one (nodes and buffers recycled from earlier graphs),
// stale handles must be detectable after a reset, and the pool must actually
// recycle buffers. The cold/warm runs execute on fresh std::threads because
// arena and pool are thread-local — a new thread is the only true cold start
// inside one process.
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/arena.h"
#include "nn/autograd.h"
#include "nn/tensor.h"
#include "nn/tensor_pool.h"
#include "perception/lst_gat.h"
#include "perception/trainer.h"
#include "rl/pdqn_agent.h"

namespace head {
namespace {

rl::AugmentedState RandomState(Rng& rng) {
  rl::AugmentedState s;
  s.h = nn::Tensor::Uniform(rl::kStateHRows, rl::kStateCols, -1.0, 1.0, rng);
  s.f = nn::Tensor::Uniform(rl::kStateFRows, rl::kStateCols, -1.0, 1.0, rng);
  return s;
}

/// One full BP-DQN update with fixed seeds; returns every parameter tensor.
std::vector<nn::Tensor> BpDqnUpdateParams() {
  rl::PdqnConfig config;
  config.hidden = 16;
  config.batch_size = 8;
  config.warmup_transitions = 8;
  config.buffer_capacity = 64;
  config.batched_updates = true;
  Rng init(11);
  auto agent = rl::MakeBpDqnAgent(config, init);
  Rng data(21);
  for (int i = 0; i < 12; ++i) {
    const rl::AugmentedState s = RandomState(data);
    const rl::AugmentedState s2 = RandomState(data);
    rl::AgentAction action;
    action.behavior = static_cast<int>(data.UniformInt(0, 2));
    action.params = nn::Tensor::Uniform(1, rl::kNumBehaviors, -3.0, 3.0, data);
    action.maneuver.lane_change = rl::BehaviorToLaneChange(action.behavior);
    action.maneuver.accel_mps2 = action.params[action.behavior];
    agent->Remember(s, action, data.Uniform(-1.0, 1.0), s2, i % 5 == 0);
  }
  Rng rng(31);
  agent->Update(rng);
  std::vector<nn::Tensor> out;
  for (const nn::Var& p : agent->x_net().Params()) out.push_back(p.value());
  for (const nn::Var& p : agent->q_net().Params()) out.push_back(p.value());
  return out;
}

perception::PredictionSample RandomSample(Rng& rng) {
  perception::PredictionSample s;
  s.graph.steps.resize(3);
  for (auto& step : s.graph.steps) {
    for (auto& target : step.feat) {
      for (auto& node : target) {
        for (double& f : node) f = rng.Uniform(-1.0, 1.0);
      }
    }
  }
  for (int i = 0; i < perception::kNumAreas; ++i) {
    for (int c = 0; c < 3; ++c) {
      s.graph.target_rel_current[i][c] = rng.Uniform(-1.0, 1.0);
      s.truth.value[i][c] = rng.Uniform(-1.0, 1.0);
    }
    s.truth.valid[i] = rng.Uniform(0.0, 1.0) < 0.7;
  }
  return s;
}

/// One LST-GAT training epoch with fixed seeds; returns every parameter.
std::vector<nn::Tensor> LstGatUpdateParams() {
  perception::LstGatConfig net_config;
  net_config.d_phi1 = 8;
  net_config.d_phi3 = 8;
  net_config.d_lstm = 8;
  Rng init(17);
  perception::LstGat model(net_config, init);
  Rng data(18);
  std::vector<perception::PredictionSample> train;
  for (int i = 0; i < 6; ++i) train.push_back(RandomSample(data));
  perception::PredictionTrainConfig config;
  config.epochs = 1;
  config.batch_size = 4;
  config.batched = true;
  perception::TrainPredictor(model, train, config);
  std::vector<nn::Tensor> out;
  for (const nn::Var& p : model.Params()) out.push_back(p.value());
  return out;
}

/// Runs `work` on a fresh thread. With `warm` set, first churns that
/// thread's arena and pool through several throwaway training graphs so
/// `work` runs entirely on recycled nodes and pooled buffers.
std::vector<nn::Tensor> RunOnFreshThread(bool warm,
                                         std::vector<nn::Tensor> (*work)()) {
  std::vector<nn::Tensor> result;
  std::thread t([&result, warm, work] {
    if (warm) {
      for (int i = 0; i < 3; ++i) BpDqnUpdateParams();
      LstGatUpdateParams();
      EXPECT_GT(nn::GraphArena::ThreadLocal().stats().resets, 0u);
      EXPECT_GT(nn::TensorPool::Get()->stats().hits, 0u);
    }
    result = work();
  });
  t.join();
  return result;
}

void ExpectBitwiseEqual(const std::vector<nn::Tensor>& a,
                        const std::vector<nn::Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a[p].rows(), b[p].rows());
    ASSERT_EQ(a[p].cols(), b[p].cols());
    for (int i = 0; i < a[p].size(); ++i) {
      EXPECT_EQ(a[p][i], b[p][i]) << "param " << p << " element " << i;
    }
  }
}

TEST(ArenaParityTest, BpDqnUpdateBitwiseColdVsWarmArena) {
  const auto cold = RunOnFreshThread(/*warm=*/false, &BpDqnUpdateParams);
  const auto warm = RunOnFreshThread(/*warm=*/true, &BpDqnUpdateParams);
  ExpectBitwiseEqual(cold, warm);
}

TEST(ArenaParityTest, LstGatUpdateBitwiseColdVsWarmArena) {
  const auto cold = RunOnFreshThread(/*warm=*/false, &LstGatUpdateParams);
  const auto warm = RunOnFreshThread(/*warm=*/true, &LstGatUpdateParams);
  ExpectBitwiseEqual(cold, warm);
}

TEST(ArenaEpochTest, HandlesDieAtResetAndParamsSurvive) {
  nn::ResetTape();
  const nn::Var param = nn::Var::Param(nn::Tensor::Full(1, 2, 3.0));
  const nn::Var constant = nn::Var::Constant(nn::Tensor::Full(1, 2, 4.0));
  const nn::Var sum = nn::Add(param, constant);
  EXPECT_TRUE(param.alive());
  EXPECT_TRUE(constant.alive());
  EXPECT_TRUE(sum.alive());

  nn::ResetTape();
  // Arena handles are stale now; the persistent Param is not.
  EXPECT_FALSE(constant.alive());
  EXPECT_FALSE(sum.alive());
  EXPECT_TRUE(param.alive());

  // A recycled node gets a new epoch: the fresh handle is alive even though
  // it reuses the storage the stale handles point at.
  const nn::Var fresh = nn::Var::Constant(nn::Tensor::Full(1, 2, 5.0));
  EXPECT_TRUE(fresh.alive());
  EXPECT_FALSE(constant.alive());
  EXPECT_EQ(fresh.value()[0], 5.0);
}

TEST(ArenaEpochTest, ResetRecyclesNodesWithoutGrowingCapacity) {
  nn::GraphArena& arena = nn::GraphArena::ThreadLocal();
  nn::ResetTape();
  const nn::Var a = nn::Var::Constant(nn::Tensor::Full(2, 2, 1.0));
  const nn::Var b = nn::Var::Constant(nn::Tensor::Full(2, 2, 2.0));
  nn::Var sum = nn::Add(a, b);
  const uint64_t created = arena.stats().nodes_created;
  for (int i = 0; i < 100; ++i) {
    nn::ResetTape();
    const nn::Var a2 = nn::Var::Constant(nn::Tensor::Full(2, 2, 1.0));
    const nn::Var b2 = nn::Var::Constant(nn::Tensor::Full(2, 2, 2.0));
    sum = nn::Add(a2, b2);
    EXPECT_EQ(sum.value()[0], 3.0);
  }
  // Same-shaped regions reuse the same nodes — no new chunk allocations.
  EXPECT_EQ(arena.stats().nodes_created, created);
}

TEST(TensorPoolTest, RecyclesBuffersAndCountsHits) {
  nn::TensorPool* pool = nn::TensorPool::Get();
  ASSERT_NE(pool, nullptr);
  // Odd size: this bucket is unlikely to be touched by other tests.
  const size_t n = (size_t{1} << 20) + 3;

  const uint64_t misses0 = pool->stats().misses;
  std::vector<double> buf = pool->Acquire(n);
  EXPECT_GE(buf.capacity(), n);
  EXPECT_EQ(pool->stats().misses, misses0 + 1);

  buf.assign(n, 1.5);
  const double* data = buf.data();
  const uint64_t released0 = pool->stats().released;
  pool->Release(std::move(buf));
  EXPECT_EQ(pool->stats().released, released0 + 1);

  const uint64_t hits0 = pool->stats().hits;
  std::vector<double> again = pool->Acquire(n);
  EXPECT_EQ(pool->stats().hits, hits0 + 1);
  EXPECT_EQ(pool->stats().misses, misses0 + 1);  // no second heap trip
  EXPECT_EQ(again.data(), data);                 // literally the same buffer
  pool->Release(std::move(again));
}

TEST(TensorPoolTest, TensorRoundTripReusesPooledStorage) {
  const int rows = 37, cols = 53;  // another otherwise-unused size class
  const double* data = nullptr;
  {
    nn::Tensor t(rows, cols);
    data = t.data().data();
  }  // destructor parks the buffer in the pool
  nn::Tensor t2(rows, cols, 0.25);
  EXPECT_EQ(t2.data().data(), data);
  EXPECT_EQ(t2.At(rows - 1, cols - 1), 0.25);
}

TEST(TensorPoolTest, ZeroSizedAcquireAllocatesNothing) {
  nn::TensorPool* pool = nn::TensorPool::Get();
  const uint64_t misses0 = pool->stats().misses;
  const uint64_t hits0 = pool->stats().hits;
  const std::vector<double> buf = pool->Acquire(0);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.capacity(), 0u);
  EXPECT_EQ(pool->stats().misses, misses0);
  EXPECT_EQ(pool->stats().hits, hits0);
}

}  // namespace
}  // namespace head
