// Overhead of the permanent sim-loop instrumentation (ISSUE 1 acceptance):
// with tracing disabled, the instrumented sim::Simulation::Step must cost
// < 5% over the uninstrumented seed. BM_DisabledSpan measures the raw
// HEAD_SPAN disabled path (a relaxed atomic load — low single-digit ns);
// BM_SimStep_TracingOff vs BM_SimStep_TracingOn bounds the full-step cost
// in both modes on a realistic fleet.
//
// The flight-recorder rows bound the black box the same way: the disabled
// gate (BM_DisabledRecorderGate) must sit in the same low-single-digit-ns
// noise band as BM_DisabledSpan, a full scratch-fill + ring commit
// (BM_RecorderCommit) is a struct copy with no allocation, and
// BM_SimStep_RecordingOff/_RecordingOn bound the end-to-end step cost. The
// timeseries rows cost out the per-episode curve sink.
//
// The op-profiler rows (ISSUE 8 acceptance): BM_DisabledOpScope must sit in
// the BM_DisabledSpan noise band (≲1 ns — one relaxed load), since
// HEAD_PROF_OP lives permanently inside every kernel entry point and
// autograd node; BM_EnabledOpScope prices the enabled record path (two clock
// reads + relaxed adds into the per-thread table); the
// BM_EnvStep_Profiling{Off,On} pair bounds the full env-step cost both ways.
#include <benchmark/benchmark.h>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "rl/env.h"
#include "sim/simulation.h"

namespace {

using namespace head;

sim::SimConfig BenchSimConfig() {
  sim::SimConfig config;
  config.road.length_m = 3000.0;  // long road: steps dominated by the fleet
  config.max_steps = 1 << 30;     // never time out inside the benchmark
  return config;
}

void BM_DisabledSpan(benchmark::State& state) {
  obs::SetTracingEnabled(false);
  for (auto _ : state) {
    HEAD_SPAN("bench.noop");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_DisabledSpan);

void BM_EnabledSpan(benchmark::State& state) {
  obs::SetTracingEnabled(true);
  for (auto _ : state) {
    HEAD_SPAN("bench.noop");
    benchmark::ClobberMemory();
  }
  obs::SetTracingEnabled(false);
  obs::DrainTraceEvents();
}
BENCHMARK(BM_EnabledSpan);

void BM_DisabledOpScope(benchmark::State& state) {
  obs::StopProfiling();
  for (auto _ : state) {
    HEAD_PROF_OP("bench.noop", 64, 64, 64, 524288, 98304);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_DisabledOpScope);

void BM_EnabledOpScope(benchmark::State& state) {
  obs::ProfilerOptions options;
  options.hw_counters = false;  // price the record path, not perf ioctls
  obs::StartProfiling(options);
  for (auto _ : state) {
    HEAD_PROF_OP("bench.noop", 64, 64, 64, 524288, 98304);
    benchmark::ClobberMemory();
  }
  obs::StopProfiling();
  obs::ResetProfile();
}
BENCHMARK(BM_EnabledOpScope);

void BM_CounterAdd(benchmark::State& state) {
  static obs::Counter& counter = obs::GetCounter("bench.counter");
  for (auto _ : state) {
    counter.Add();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  static obs::Histogram& hist = obs::LatencyHistogram("bench.hist");
  double v = 1e-6;
  for (auto _ : state) {
    hist.Observe(v);
    v = v < 1.0 ? v * 1.01 : 1e-6;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_DisabledRecorderGate(benchmark::State& state) {
  obs::SetRecordingEnabled(false);
  for (auto _ : state) {
    // The exact hot-path pattern at every instrumentation site.
    if (obs::RecordingEnabled()) {
      obs::ScratchRecord().accel_mps2 = 1.0;
    }
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_DisabledRecorderGate);

void BM_RecorderCommit(benchmark::State& state) {
  obs::RecorderConfig cfg;
  cfg.dump_dir.clear();          // memory-only: triggers never touch disk
  cfg.dump_on_collision = false;
  obs::ConfigureRecorder(cfg);
  obs::SetRecordingEnabled(true);
  obs::BeginEpisode({});
  int step = 0;
  for (auto _ : state) {
    obs::StepRecord& rec = obs::ScratchRecord();
    rec.step = ++step;
    rec.time_s = step * 0.5;
    rec.ego_lane = 3;
    rec.ego_lon_m = 7.0 * step;
    rec.ego_v_mps = 20.0;
    rec.accel_mps2 = -1.0;
    rec.has_reward = 1;
    rec.r_total = -0.25;
    obs::CommitStepRecord();
    benchmark::ClobberMemory();
  }
  obs::SetRecordingEnabled(false);
}
BENCHMARK(BM_RecorderCommit);

void BM_TimeSeriesAppend(benchmark::State& state) {
  obs::TimeSeries ts(4096);
  double t = 0.0;
  for (auto _ : state) {
    ts.Append(t += 1.0, {{"reward", -0.2}, {"epsilon", 0.5}, {"loss", 0.01}});
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TimeSeriesAppend);

void BM_TimeSeriesSampleRegistry(benchmark::State& state) {
  obs::GetCounter("bench.ts.counter").Add(1);
  obs::GetGauge("bench.ts.gauge").Set(1.0);
  obs::TimeSeries ts(4096);
  double t = 0.0;
  for (auto _ : state) {
    ts.SampleRegistry(t += 1.0, "bench.ts.");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TimeSeriesSampleRegistry);

void StepLoop(benchmark::State& state) {
  sim::Simulation sim(BenchSimConfig(), /*seed=*/1);
  const Maneuver keep{LaneChange::kKeep, 0.0};
  uint64_t seed = 1;
  for (auto _ : state) {
    if (sim.status() != sim::EpisodeStatus::kRunning) sim.Reset(++seed);
    benchmark::DoNotOptimize(sim.Step(keep));
  }
}

void BM_SimStep_TracingOff(benchmark::State& state) {
  obs::SetTracingEnabled(false);
  StepLoop(state);
}
BENCHMARK(BM_SimStep_TracingOff);

void BM_SimStep_TracingOn(benchmark::State& state) {
  obs::SetTracingEnabled(true);
  StepLoop(state);
  obs::SetTracingEnabled(false);
  obs::DrainTraceEvents();
}
BENCHMARK(BM_SimStep_TracingOn);

void BM_SimStep_RecordingOff(benchmark::State& state) {
  obs::SetTracingEnabled(false);
  obs::SetRecordingEnabled(false);
  StepLoop(state);
}
BENCHMARK(BM_SimStep_RecordingOff);

void BM_SimStep_RecordingOn(benchmark::State& state) {
  obs::SetTracingEnabled(false);
  obs::RecorderConfig cfg;
  cfg.dump_dir.clear();
  cfg.dump_on_collision = false;  // stay on the commit path, not the dump path
  obs::ConfigureRecorder(cfg);
  obs::SetRecordingEnabled(true);
  obs::BeginEpisode({});
  StepLoop(state);
  obs::SetRecordingEnabled(false);
}
BENCHMARK(BM_SimStep_RecordingOn);

/// Full env step (sim + sensor + phantom + st-graph, no predictor) — the
/// densest permanent HEAD_PROF_OP instrumentation outside nn itself.
void EnvStepLoop(benchmark::State& state) {
  rl::EnvConfig config;
  config.sim.road.length_m = 800.0;
  config.sim.max_steps = 1 << 30;
  config.use_prediction = false;
  rl::DrivingEnv env(config, nullptr, /*seed=*/1);
  uint64_t seed = 1;
  env.Reset(seed);
  const Maneuver keep{LaneChange::kKeep, 0.0};
  for (auto _ : state) {
    const auto out = env.Step(keep);
    if (out.done) env.Reset(++seed);
    benchmark::ClobberMemory();
  }
}

void BM_EnvStep_ProfilingOff(benchmark::State& state) {
  obs::SetTracingEnabled(false);
  obs::StopProfiling();
  EnvStepLoop(state);
}
BENCHMARK(BM_EnvStep_ProfilingOff);

void BM_EnvStep_ProfilingOn(benchmark::State& state) {
  obs::SetTracingEnabled(false);
  obs::ProfilerOptions options;
  options.hw_counters = false;
  obs::StartProfiling(options);
  EnvStepLoop(state);
  obs::StopProfiling();
  obs::ResetProfile();
}
BENCHMARK(BM_EnvStep_ProfilingOn);

}  // namespace

BENCHMARK_MAIN();
