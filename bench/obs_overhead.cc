// Overhead of the permanent sim-loop instrumentation (ISSUE 1 acceptance):
// with tracing disabled, the instrumented sim::Simulation::Step must cost
// < 5% over the uninstrumented seed. BM_DisabledSpan measures the raw
// HEAD_SPAN disabled path (a relaxed atomic load — low single-digit ns);
// BM_SimStep_TracingOff vs BM_SimStep_TracingOn bounds the full-step cost
// in both modes on a realistic fleet.
#include <benchmark/benchmark.h>

#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/simulation.h"

namespace {

using namespace head;

sim::SimConfig BenchSimConfig() {
  sim::SimConfig config;
  config.road.length_m = 3000.0;  // long road: steps dominated by the fleet
  config.max_steps = 1 << 30;     // never time out inside the benchmark
  return config;
}

void BM_DisabledSpan(benchmark::State& state) {
  obs::SetTracingEnabled(false);
  for (auto _ : state) {
    HEAD_SPAN("bench.noop");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_DisabledSpan);

void BM_EnabledSpan(benchmark::State& state) {
  obs::SetTracingEnabled(true);
  for (auto _ : state) {
    HEAD_SPAN("bench.noop");
    benchmark::ClobberMemory();
  }
  obs::SetTracingEnabled(false);
  obs::DrainTraceEvents();
}
BENCHMARK(BM_EnabledSpan);

void BM_CounterAdd(benchmark::State& state) {
  static obs::Counter& counter = obs::GetCounter("bench.counter");
  for (auto _ : state) {
    counter.Add();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  static obs::Histogram& hist = obs::LatencyHistogram("bench.hist");
  double v = 1e-6;
  for (auto _ : state) {
    hist.Observe(v);
    v = v < 1.0 ? v * 1.01 : 1e-6;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_HistogramObserve);

void StepLoop(benchmark::State& state) {
  sim::Simulation sim(BenchSimConfig(), /*seed=*/1);
  const Maneuver keep{LaneChange::kKeep, 0.0};
  uint64_t seed = 1;
  for (auto _ : state) {
    if (sim.status() != sim::EpisodeStatus::kRunning) sim.Reset(++seed);
    benchmark::DoNotOptimize(sim.Step(keep));
  }
}

void BM_SimStep_TracingOff(benchmark::State& state) {
  obs::SetTracingEnabled(false);
  StepLoop(state);
}
BENCHMARK(BM_SimStep_TracingOff);

void BM_SimStep_TracingOn(benchmark::State& state) {
  obs::SetTracingEnabled(true);
  StepLoop(state);
  obs::SetTracingEnabled(false);
  obs::DrainTraceEvents();
}
BENCHMARK(BM_SimStep_TracingOn);

}  // namespace

BENCHMARK_MAIN();
