// Table VI — Efficiency of the RL methods: TCT (training convergence time)
// and AvgIT (average greedy-inference latency per decision).
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "eval/table.h"
#include "eval/timer.h"
#include "eval/workbench.h"
#include "parallel/env_pool.h"
#include "rl/p_ddpg.h"
#include "rl/pdqn_agent.h"
#include "rl/trainer.h"

namespace {

using namespace head;

struct AgentEntry {
  std::string name;
  std::shared_ptr<rl::PamdpAgent> agent;
  double tct_s = 0.0;
  double avg_it_ms = 0.0;
};

std::vector<AgentEntry> g_agents;
rl::AugmentedState g_state;

void RunTable6() {
  const eval::BenchProfile profile = eval::BenchProfile::FromEnv();
  auto predictor = eval::TrainOrLoadLstGat(profile);
  const core::HeadConfig head =
      eval::MakeHeadConfig(profile, core::HeadVariant::Full());

  // A representative state for the latency measurement.
  {
    rl::DrivingEnv env(head.MakeEnvConfig(profile.rl_sim), predictor.get(),
                       profile.seed);
    g_state = env.Reset(profile.seed);
  }

  eval::TablePrinter table({"Metric", "P-QP", "P-DDPG", "P-DQN", "BP-DQN"});
  std::vector<std::string> tct_row = {"TCT (s)"};
  std::vector<std::string> it_row = {"AvgIT (ms)"};
  for (const std::string name : {"P-QP", "P-DDPG", "P-DQN", "BP-DQN"}) {
    Rng rng(profile.seed + 17);
    std::shared_ptr<rl::PamdpAgent> agent;
    if (name == "P-QP") {
      agent = rl::MakePQpAgent(head.pdqn, rng);
    } else if (name == "P-DDPG") {
      rl::PddpgConfig c;
      c.hidden = head.pdqn.hidden;
      c.batch_size = head.pdqn.batch_size;
      c.warmup_transitions = head.pdqn.warmup_transitions;
      c.update_every = head.pdqn.update_every;
      c.a_max = head.pdqn.a_max;
      agent = std::make_shared<rl::PddpgAgent>(c, rng);
    } else if (name == "P-DQN") {
      agent = rl::MakePDqnAgent(head.pdqn, rng);
    } else {
      agent = rl::MakeBpDqnAgent(head.pdqn, rng);
    }
    // TCT measures wall-clock with parallel collection: rounds of
    // K = rollout_envs episodes fan out across the global thread pool.
    parallel::EnvPool envs =
        eval::MakeEnvPool(profile, core::HeadVariant::Full(), predictor);
    rl::RlTrainConfig train = profile.rl_train;
    // Method comparison needs a ranking, not a final policy: half budget.
    train.episodes = std::max(100, train.episodes / 3);
    train.seed = profile.seed + 29;
    std::cout << "training " << name << " (" << train.episodes
              << " episodes, K=" << envs.size() << " envs)...\n";
    const rl::RlTrainResult result = rl::TrainAgent(*agent, envs, train);

    Rng act_rng(1);
    const double avg_it = eval::MeasureAvgMillis(
        [&] {
          benchmark::DoNotOptimize(agent->Act(g_state, 0.0, act_rng));
        },
        500, 50);
    tct_row.push_back(eval::FormatDouble(result.convergence_seconds, 1));
    it_row.push_back(eval::FormatDouble(avg_it, 3));
    g_agents.push_back({name, agent, result.convergence_seconds, avg_it});
  }
  table.AddRow(tct_row);
  table.AddRow(it_row);
  table.Print(std::cout,
              "Table VI — RL efficiency (" + profile.name + " profile)");
}

void BM_Decision(benchmark::State& state) {
  AgentEntry& entry = g_agents[state.range(0)];
  state.SetLabel(entry.name);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(entry.agent->Act(g_state, 0.0, rng));
  }
  state.counters["TCT_s"] = entry.tct_s;
  state.counters["AvgIT_ms"] = entry.avg_it_ms;
}

}  // namespace

int main(int argc, char** argv) {
  RunTable6();
  for (size_t i = 0; i < g_agents.size(); ++i) {
    const std::string name = "BM_Decision/" + g_agents[i].name;
    benchmark::RegisterBenchmark(name.c_str(), &BM_Decision)
        ->Arg(static_cast<int>(i))
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
