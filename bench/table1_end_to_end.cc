// Table I — End-to-end performance of baselines and HEAD in the simulated
// environment: IDM-LC, ACC-LC, DRL-SC, TP-BTS vs HEAD on the macroscopic
// (AvgDT-A, AvgDT-C, Avg#-CA) and microscopic (MinTTC-A, AvgV-A, AvgJ-A,
// AvgD-CA) metrics of Sec. V-B.
//
// Profile: fast by default; HEAD_BENCH_PROFILE=paper for paper-scale runs.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <vector>

#include "decision/acc_lc.h"
#include "decision/idm_lc.h"
#include "decision/tp_bts.h"
#include "eval/episode_runner.h"
#include "eval/table.h"
#include "eval/workbench.h"

namespace {

using namespace head;

struct MethodResult {
  std::string name;
  eval::AggregateMetrics metrics;
  std::shared_ptr<decision::Policy> policy;  // kept for latency benchmarks
};

std::vector<MethodResult> g_results;
eval::RunnerConfig g_runner;

void RunTable1() {
  const eval::BenchProfile profile = eval::BenchProfile::FromEnv();
  g_runner.sim = profile.rl_sim;
  g_runner.episodes = profile.test_episodes;
  g_runner.seed_base = profile.seed * 1000;

  const decision::RuleBasedConfig rule_config =
      decision::RuleBasedConfig::ForRoad(profile.rl_sim.road);

  auto idm = std::make_shared<decision::IdmLcPolicy>(rule_config);
  auto acc = std::make_shared<decision::AccLcPolicy>(rule_config);
  decision::TpBtsConfig tp_config;
  tp_config.road = profile.rl_sim.road;
  auto tp_bts = std::make_shared<decision::TpBtsPolicy>(tp_config);

  auto predictor = eval::TrainOrLoadLstGat(profile);
  std::shared_ptr<rl::DrlScAgent> drl_sc_agent =
      eval::TrainOrLoadDrlSc(profile, predictor);
  std::shared_ptr<decision::Policy> drl_sc = eval::MakePolicy(
      profile, core::HeadVariant::WithoutLstGat(), predictor, drl_sc_agent);

  std::shared_ptr<rl::PdqnAgent> head_agent =
      eval::TrainOrLoadHeadPolicy(profile, core::HeadVariant::Full(),
                                  predictor);
  std::shared_ptr<decision::Policy> head_policy = eval::MakePolicy(
      profile, core::HeadVariant::Full(), predictor, head_agent);

  const std::vector<std::pair<std::string, std::shared_ptr<decision::Policy>>>
      methods = {{"IDM-LC", idm},
                 {"ACC-LC", acc},
                 {"DRL-SC", drl_sc},
                 {"TP-BTS", tp_bts},
                 {"HEAD", head_policy}};

  eval::TablePrinter table(
      {"Method", "AvgDT-A(s)", "AvgDT-C(s)", "Avg#-CA", "MinTTC-A(s)",
       "AvgV-A(m/s)", "AvgJ-A(m/s2)", "AvgD-CA(m/s)", "Done/Coll"});
  for (const auto& [name, policy] : methods) {
    const eval::AggregateMetrics m = eval::RunPolicy(*policy, g_runner);
    table.AddRow({name, eval::FormatDouble(m.avg_dt_a_s, 1),
                  eval::FormatDouble(m.avg_dt_c_s, 1),
                  eval::FormatDouble(m.avg_num_ca, 1),
                  eval::FormatDouble(m.min_ttc_a_s, 2),
                  eval::FormatDouble(m.avg_v_a_mps, 2),
                  eval::FormatDouble(m.avg_j_a_mps2, 2),
                  eval::FormatDouble(m.avg_d_ca_mps, 2),
                  std::to_string(m.completed) + "/" +
                      std::to_string(m.collisions)});
    g_results.push_back({name, m, policy});
  }
  table.Print(std::cout,
              "Table I — End-to-end performance (" + profile.name +
                  " profile, " + std::to_string(g_runner.episodes) +
                  " test episodes)");
}

/// Per-method single-episode benchmark exposing the Table I metrics as
/// google-benchmark counters.
void BM_Episode(benchmark::State& state) {
  MethodResult& r = g_results[state.range(0)];
  state.SetLabel(r.name);
  uint64_t seed = g_runner.seed_base + 777;
  for (auto _ : state) {
    const eval::EpisodeRecord rec =
        eval::RunEpisode(*r.policy, g_runner, seed++);
    benchmark::DoNotOptimize(rec);
  }
  state.counters["AvgDT_A_s"] = r.metrics.avg_dt_a_s;
  state.counters["AvgV_A_mps"] = r.metrics.avg_v_a_mps;
  state.counters["Avg_CA"] = r.metrics.avg_num_ca;
  state.counters["MinTTC_A_s"] = r.metrics.min_ttc_a_s;
}

}  // namespace

int main(int argc, char** argv) {
  RunTable1();
  for (size_t i = 0; i < g_results.size(); ++i) {
    const std::string bench_name = "BM_Episode/" + g_results[i].name;
    benchmark::RegisterBenchmark(bench_name.c_str(), &BM_Episode)
        ->Arg(static_cast<int>(i))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
