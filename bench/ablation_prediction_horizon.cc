// Ablation — prediction accuracy vs. horizon (the design argument of
// Sec. III-A): rolling the one-step predictors out recursively shows the
// error growth that motivates HEAD's one-step state prediction. One trained
// LST-GAT and one LSTM-MLP are rolled out 1..H steps; the table reports
// MAE/RMSE per horizon.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "data/real_dataset.h"
#include "eval/table.h"
#include "eval/workbench.h"
#include "perception/baselines/lstm_mlp.h"
#include "perception/multi_step.h"
#include "perception/trainer.h"

namespace {

using namespace head;

constexpr int kHorizon = 5;

std::shared_ptr<perception::LstGat> g_model;
std::vector<perception::MultiStepSample> g_samples;
RoadConfig g_road;

void RunAblation() {
  const eval::BenchProfile profile = eval::BenchProfile::FromEnv();
  g_road = profile.real.sim.road;

  data::RealDatasetConfig data_config = profile.real;
  g_samples = data::GenerateMultiStepSamples(data_config, kHorizon);
  std::cout << "multi-step corpus: " << g_samples.size() << " samples, "
            << "horizon " << kHorizon << " (" << kHorizon * 0.5 << "s)\n";

  // Train the two predictors on the standard one-step corpus.
  const data::RealDataset dataset = eval::BuildRealDataset(profile);
  Rng rng(profile.seed);
  g_model =
      std::make_shared<perception::LstGat>(perception::LstGatConfig{}, rng);
  auto lstm_mlp = std::make_shared<perception::LstmMlp>(64, rng);
  perception::TrainPredictor(*g_model, dataset.train, profile.pred_train);
  perception::TrainPredictor(*lstm_mlp, dataset.train, profile.pred_train);

  const perception::MultiStepPredictor gat_rollout(*g_model, g_road);
  const perception::MultiStepPredictor mlp_rollout(*lstm_mlp, g_road);
  const perception::HorizonMetrics gat =
      perception::EvaluateHorizons(gat_rollout, g_samples, kHorizon);
  const perception::HorizonMetrics mlp =
      perception::EvaluateHorizons(mlp_rollout, g_samples, kHorizon);

  eval::TablePrinter table({"Horizon (steps)", "LST-GAT MAE", "LST-GAT RMSE",
                            "LSTM-MLP MAE", "LSTM-MLP RMSE"});
  for (int h = 0; h < kHorizon; ++h) {
    table.AddRow({std::to_string(h + 1), eval::FormatDouble(gat.mae[h], 3),
                  eval::FormatDouble(gat.rmse[h], 3),
                  eval::FormatDouble(mlp.mae[h], 3),
                  eval::FormatDouble(mlp.rmse[h], 3)});
  }
  table.Print(std::cout,
              "Ablation — error growth of recursive multi-step prediction "
              "(" + profile.name + " profile; Sec. III-A's argument for "
              "one-step prediction)");
  const double growth = gat.mae[kHorizon - 1] / std::max(gat.mae[0], 1e-9);
  std::cout << "LST-GAT MAE grows " << eval::FormatDouble(growth, 1)
            << "x from horizon 1 to " << kHorizon << "\n";
}

void BM_Rollout(benchmark::State& state) {
  const perception::MultiStepPredictor rollout(*g_model, g_road);
  const int horizon = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rollout.Rollout(g_samples.front().graph, horizon));
  }
}

}  // namespace

int main(int argc, char** argv) {
  RunAblation();
  benchmark::RegisterBenchmark("BM_Rollout", &BM_Rollout)
      ->Arg(1)
      ->Arg(3)
      ->Arg(5)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
