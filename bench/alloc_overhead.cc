// Allocation cost of the autograd hot path (ISSUE 5): arena-bumped tape
// nodes vs the per-op make_shared they replaced, and pooled tensor buffers
// vs plain heap vectors. BM_WarmTape* measure the end product — a full
// forward+backward over a small MLP-shaped graph on a warm arena+pool,
// where a steady-state step performs zero heap allocations.
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/arena.h"
#include "nn/autograd.h"
#include "nn/plan.h"
#include "nn/tensor.h"
#include "nn/tensor_pool.h"

namespace {

using namespace head;

constexpr int kNodesPerIter = 256;  // roughly one minibatch tape

/// Tape-node churn through the arena: bump-allocate a region's worth of
/// nodes, then one O(region) Reset. This is the per-step cost of the tape.
void BM_ArenaNodeChurn(benchmark::State& state) {
  nn::GraphArena& arena = nn::GraphArena::ThreadLocal();
  arena.Reset();
  for (auto _ : state) {
    for (int i = 0; i < kNodesPerIter; ++i) {
      benchmark::DoNotOptimize(arena.New());
    }
    arena.Reset();
  }
  state.SetItemsProcessed(state.iterations() * kNodesPerIter);
}
BENCHMARK(BM_ArenaNodeChurn);

/// The same churn through make_shared — one control block + node heap
/// allocation and one free per op, as the pre-arena tape did.
void BM_SharedPtrNodeChurn(benchmark::State& state) {
  std::vector<std::shared_ptr<nn::internal::VarImpl>> nodes;
  nodes.reserve(kNodesPerIter);
  for (auto _ : state) {
    for (int i = 0; i < kNodesPerIter; ++i) {
      nodes.push_back(std::make_shared<nn::internal::VarImpl>());
    }
    benchmark::DoNotOptimize(nodes.data());
    nodes.clear();
  }
  state.SetItemsProcessed(state.iterations() * kNodesPerIter);
}
BENCHMARK(BM_SharedPtrNodeChurn);

/// Pooled buffer churn at a Tensor-typical size (64×64 doubles).
void BM_PoolAcquireRelease(benchmark::State& state) {
  const size_t n = 64 * 64;
  nn::TensorPool* pool = nn::TensorPool::Get();
  pool->Release(pool->Acquire(n));  // warm the bucket
  for (auto _ : state) {
    std::vector<double> buf = pool->Acquire(n);
    benchmark::DoNotOptimize(buf.data());
    pool->Release(std::move(buf));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAcquireRelease);

/// The same churn straight through the heap allocator.
void BM_HeapAllocFree(benchmark::State& state) {
  const size_t n = 64 * 64;
  for (auto _ : state) {
    std::vector<double> buf;
    buf.reserve(n);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapAllocFree);

/// One forward+backward over an MLP-shaped graph on a warm arena+pool —
/// the zero-allocation steady-state training step this PR targets.
void BM_WarmTapeForwardBackward(benchmark::State& state) {
  Rng rng(7);
  nn::Var w1 = nn::Var::Param(nn::Tensor::XavierUniform(32, 64, rng));
  nn::Var b1 = nn::Var::Param(nn::Tensor::Zeros(1, 64));
  nn::Var w2 = nn::Var::Param(nn::Tensor::XavierUniform(64, 8, rng));
  nn::Var b2 = nn::Var::Param(nn::Tensor::Zeros(1, 8));
  const nn::Tensor input = nn::Tensor::Uniform(16, 32, -1.0, 1.0, rng);
  for (auto _ : state) {
    nn::ResetTape();
    const nn::Var x = nn::Var::Constant(input);
    const nn::Var h = nn::Relu(nn::Affine(x, w1, b1));
    const nn::Var loss = nn::Sum(nn::Square(nn::Affine(h, w2, b2)));
    nn::Backward(loss);
    benchmark::DoNotOptimize(w1.grad());
    for (nn::Var* p : {&w1, &b1, &w2, &b2}) p->ZeroGrad();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WarmTapeForwardBackward);

/// The same step replayed from a captured ExecPlan (ISSUE 9): the frozen
/// schedule walks preallocated per-thread clone nodes, so a steady-state
/// replay builds no tape at all — the alloc_events_per_step counter
/// (arena chunk growth + tensor-pool misses) must read 0.000.
void BM_PlanReplayForwardBackward(benchmark::State& state) {
  Rng rng(7);
  nn::Var w1 = nn::Var::Param(nn::Tensor::XavierUniform(32, 64, rng));
  nn::Var b1 = nn::Var::Param(nn::Tensor::Zeros(1, 64));
  nn::Var w2 = nn::Var::Param(nn::Tensor::XavierUniform(64, 8, rng));
  nn::Var b2 = nn::Var::Param(nn::Tensor::Zeros(1, 8));
  const nn::Tensor input = nn::Tensor::Uniform(16, 32, -1.0, 1.0, rng);

  nn::ResetTape();
  std::shared_ptr<const nn::ExecPlan> plan;
  {
    nn::PlanCapture capture;
    const nn::Var x = nn::PlanInput(input);
    const nn::Var h = nn::Relu(nn::Affine(x, w1, b1));
    const nn::Var loss = nn::Sum(nn::Square(nn::Affine(h, w2, b2)));
    nn::Backward(loss);
    plan = capture.Finish({loss});
  }
  for (nn::Var* p : {&w1, &b1, &w2, &b2}) p->ZeroGrad();
  for (int i = 0; i < 3; ++i) {  // warm the per-thread replay clone + pool
    std::vector<nn::Tensor> in;
    in.push_back(input);
    plan->Replay(std::move(in));
    for (nn::Var* p : {&w1, &b1, &w2, &b2}) p->ZeroGrad();
  }

  const uint64_t allocs_before = nn::AllocEvents();
  for (auto _ : state) {
    std::vector<nn::Tensor> in;
    in.push_back(input);
    benchmark::DoNotOptimize(plan->Replay(std::move(in)));
    for (nn::Var* p : {&w1, &b1, &w2, &b2}) p->ZeroGrad();
  }
  state.counters["alloc_events_per_step"] = benchmark::Counter(
      static_cast<double>(nn::AllocEvents() - allocs_before) /
      static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanReplayForwardBackward);

}  // namespace

BENCHMARK_MAIN();
