// Table II — Ablation study: HEAD-w/o-PVC, HEAD-w/o-LST-GAT,
// HEAD-w/o-BP-DQN, HEAD-w/o-IMP vs full HEAD on the same macroscopic /
// microscopic metrics as Table I.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <vector>

#include "eval/episode_runner.h"
#include "eval/table.h"
#include "eval/workbench.h"

namespace {

using namespace head;

struct VariantResult {
  std::string name;
  eval::AggregateMetrics metrics;
  std::shared_ptr<decision::Policy> policy;
};

std::vector<VariantResult> g_results;
eval::RunnerConfig g_runner;

void RunTable2() {
  const eval::BenchProfile profile = eval::BenchProfile::FromEnv();
  g_runner.sim = profile.rl_sim;
  g_runner.episodes = profile.test_episodes;
  g_runner.seed_base = profile.seed * 1000;

  auto predictor = eval::TrainOrLoadLstGat(profile);
  const std::vector<core::HeadVariant> variants = {
      core::HeadVariant::WithoutPvc(),
      core::HeadVariant::WithoutLstGat(),
      core::HeadVariant::WithoutBpDqn(),
      core::HeadVariant::WithoutImpact(),
      core::HeadVariant::Full(),
  };

  eval::TablePrinter table(
      {"Method", "AvgDT-A(s)", "AvgDT-C(s)", "Avg#-CA", "MinTTC-A(s)",
       "AvgV-A(m/s)", "AvgJ-A(m/s2)", "AvgD-CA(m/s)", "Done/Coll"});
  for (const core::HeadVariant& variant : variants) {
    std::shared_ptr<rl::PdqnAgent> agent =
        eval::TrainOrLoadHeadPolicy(profile, variant, predictor);
    std::shared_ptr<decision::Policy> policy =
        eval::MakePolicy(profile, variant, predictor, agent);
    const eval::AggregateMetrics m = eval::RunPolicy(*policy, g_runner);
    table.AddRow({variant.Name(), eval::FormatDouble(m.avg_dt_a_s, 1),
                  eval::FormatDouble(m.avg_dt_c_s, 1),
                  eval::FormatDouble(m.avg_num_ca, 1),
                  eval::FormatDouble(m.min_ttc_a_s, 2),
                  eval::FormatDouble(m.avg_v_a_mps, 2),
                  eval::FormatDouble(m.avg_j_a_mps2, 2),
                  eval::FormatDouble(m.avg_d_ca_mps, 2),
                  std::to_string(m.completed) + "/" +
                      std::to_string(m.collisions)});
    g_results.push_back({variant.Name(), m, policy});
  }
  table.Print(std::cout, "Table II — Ablation study (" + profile.name +
                             " profile, " +
                             std::to_string(g_runner.episodes) +
                             " test episodes)");
}

void BM_Episode(benchmark::State& state) {
  VariantResult& r = g_results[state.range(0)];
  state.SetLabel(r.name);
  uint64_t seed = g_runner.seed_base + 999;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::RunEpisode(*r.policy, g_runner, seed++));
  }
  state.counters["AvgDT_A_s"] = r.metrics.avg_dt_a_s;
  state.counters["Avg_CA"] = r.metrics.avg_num_ca;
  state.counters["AvgV_A_mps"] = r.metrics.avg_v_a_mps;
}

}  // namespace

int main(int argc, char** argv) {
  RunTable2();
  for (size_t i = 0; i < g_results.size(); ++i) {
    const std::string name = "BM_Episode/" + g_results[i].name;
    benchmark::RegisterBenchmark(name.c_str(), &BM_Episode)
        ->Arg(static_cast<int>(i))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
