// Serving-path throughput: requests/sec through DecisionService on the
// single-request path (max_batch=1 ping-pong) and the cross-client
// micro-batched path, the batching speedup between them, client-observed
// p50/p95/p99 latency under open-loop Poisson load at three operating
// points, and the steady-state allocation count per served request on the
// plan-replay path. Emits JSON (--json-out) and optionally gates against a
// checked-in baseline (--baseline, --max-regress) so CI catches serving
// regressions.
//
// Usage:
//   serve_throughput [--json-out=path] [--baseline=path] [--max-regress=0.30]
//                    [--threads=N] [--trials=N] [--batch=32] [--window-us=200]
//                    [--kernel=scalar|avx2] [--plans=on|off]
//                    [--min-batch-speedup=X] [--require-zero-allocs]
//                    [--metrics-out=path]
//
// Gate semantics: throughput keys are floors (current >= baseline*(1-r));
// the p99 latency key at the mid load point is a ceiling (current <=
// baseline*(1+r)) — lower latency is better. --min-batch-speedup hard-fails
// when batched/single falls below the given ratio (0 = off).
//
// The alloc keys count tape/pool events inside ModelSnapshot::DecideBatch /
// PredictBatch only (the replay hot path); client-side request/future
// plumbing is plain heap by design, exactly like training_throughput's
// caller-side index vectors. With --plans=off the eager fallback allocates
// tape nodes per batch, so the alloc keys are reported as 0 and the zero
// gate is skipped — the claim under test is specifically replay.
//
// HEAD_BENCH_PROFILE=paper scales up the measured work; the default (fast)
// sizes fit a CI smoke stage.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "nn/arena.h"
#include "nn/kernels/simd.h"
#include "nn/plan.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "perception/lst_gat.h"
#include "rl/nets.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace {

using head::Rng;
namespace kernels = head::nn::kernels;
namespace serve = head::serve;

constexpr int kHidden = 64;      // paper-scale BP-DQN nets
constexpr double kAMax = 3.0;
constexpr int kHistoryDepth = 3;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

head::rl::AugmentedState RandomState(Rng& rng) {
  head::rl::AugmentedState s;
  s.h = head::nn::Tensor::Uniform(head::rl::kStateHRows, head::rl::kStateCols,
                                  -1.0, 1.0, rng);
  s.f = head::nn::Tensor::Uniform(head::rl::kStateFRows, head::rl::kStateCols,
                                  -1.0, 1.0, rng);
  return s;
}

head::perception::StGraph RandomGraph(Rng& rng) {
  head::perception::StGraph graph;
  graph.steps.resize(kHistoryDepth);
  for (head::perception::StepNodes& step : graph.steps) {
    for (auto& target : step.feat) {
      for (auto& node : target) {
        for (double& v : node) v = rng.Uniform(-1.0, 1.0);
      }
    }
  }
  for (auto& rel : graph.target_rel_current) {
    for (double& v : rel) v = rng.Uniform(-5.0, 5.0);
  }
  return graph;
}

serve::ModelFactories PaperFactories() {
  serve::ModelFactories factories;
  factories.make_x = [](Rng& rng) {
    return std::make_unique<head::rl::BpXNet>(kHidden, kAMax, rng);
  };
  factories.make_q = [](Rng& rng) {
    return std::make_unique<head::rl::BpQNet>(kHidden, rng);
  };
  factories.make_predictor = [](Rng& rng) {
    return std::make_unique<head::perception::LstGat>(
        head::perception::LstGatConfig{}, rng);
  };
  return factories;
}

std::vector<head::rl::AugmentedState> StatePool(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<head::rl::AugmentedState> states;
  states.reserve(n);
  for (int i = 0; i < n; ++i) states.push_back(RandomState(rng));
  return states;
}

/// Closed-loop firehose: submit `wave_size` requests, wait for all replies,
/// repeat until `total` have been served. Every reply must be kOk (the wave
/// never exceeds queue capacity). Returns requests/sec.
double RunDecisionWaves(serve::DecisionService& service,
                        const std::vector<head::rl::AugmentedState>& states,
                        int wave_size, int total) {
  std::vector<std::future<serve::DecisionReply>> futures;
  futures.reserve(wave_size);
  size_t cursor = 0;
  int sent = 0;
  const double t0 = Now();
  while (sent < total) {
    const int n = std::min(wave_size, total - sent);
    futures.clear();
    for (int i = 0; i < n; ++i) {
      serve::DecisionRequest request;
      request.state = states[cursor++ % states.size()];
      futures.push_back(service.SubmitDecision(std::move(request)));
    }
    for (auto& f : futures) {
      const serve::DecisionReply reply = f.get();
      HEAD_CHECK_EQ(static_cast<int>(reply.status),
                    static_cast<int>(serve::ServeStatus::kOk));
    }
    sent += n;
  }
  return static_cast<double>(total) / (Now() - t0);
}

/// Single-request-at-a-time round trips: max_batch=1, one outstanding
/// request (submit, wait, repeat). The per-request cost here includes the
/// full admission/batcher/dispatch path — the honest unbatched reference.
double MeasureSingleRps(serve::ModelSnapshotRegistry& registry, int requests) {
  serve::ServeConfig config;
  config.max_batch = 1;
  config.batch_window_us = 0;
  serve::DecisionService service(&registry, config);
  const auto states = StatePool(64, 0xabcu);
  RunDecisionWaves(service, states, 1, 64);  // warm plans + replay contexts
  return RunDecisionWaves(service, states, 1, requests);
}

/// Saturating cross-client load: waves of 4*max_batch keep the admission
/// queue primed so the batcher always forms full batches. `mean_batch` is
/// read back from the serve.batch_size histogram delta across the run.
double MeasureBatchedRps(serve::ModelSnapshotRegistry& registry, int max_batch,
                         int64_t window_us, int requests, double* mean_batch) {
  serve::ServeConfig config;
  config.max_batch = max_batch;
  config.batch_window_us = window_us;
  const int wave = 4 * max_batch;
  config.queue_capacity = 2 * wave;
  serve::DecisionService service(&registry, config);
  const auto states = StatePool(64, 0xabcu);
  RunDecisionWaves(service, states, wave, 2 * wave);  // warm
  head::obs::Histogram& batch_size = head::obs::GetHistogram("serve.batch_size");
  const head::obs::HistogramSnapshot before = batch_size.Snapshot();
  const double rps = RunDecisionWaves(service, states, wave, requests);
  const head::obs::HistogramSnapshot after = batch_size.Snapshot();
  if (mean_batch != nullptr) {
    *mean_batch = after.count > before.count
                      ? (after.sum - before.sum) / (after.count - before.count)
                      : 0.0;
  }
  return rps;
}

struct LoadPoint {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  int64_t rejected = 0;
  int64_t deadline_missed = 0;
};

double QuantileUs(std::vector<double>& sorted_latencies_s, double q) {
  if (sorted_latencies_s.empty()) return 0.0;
  const double rank = q * (sorted_latencies_s.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_latencies_s.size() - 1);
  const double frac = rank - lo;
  return (sorted_latencies_s[lo] * (1.0 - frac) +
          sorted_latencies_s[hi] * frac) *
         1e6;
}

/// Open-loop Poisson load at `rate_rps`: one submitter draws exponential
/// inter-arrival gaps and never waits for replies (futures drain after the
/// arrival schedule completes), so queueing delay shows up in the client
/// latency instead of throttling the offered load. Latencies are
/// client-observed (reply.latency_s spans submit → scatter).
LoadPoint MeasureLoadPoint(serve::ModelSnapshotRegistry& registry,
                           int max_batch, int64_t window_us, double rate_rps,
                           int requests, uint64_t seed) {
  serve::ServeConfig config;
  config.max_batch = max_batch;
  config.batch_window_us = window_us;
  config.queue_capacity = 1024;
  serve::DecisionService service(&registry, config);
  const auto states = StatePool(64, seed);
  RunDecisionWaves(service, states, max_batch, 4 * max_batch);  // warm

  head::obs::Counter& rejected_counter = head::obs::GetCounter("serve.rejected");
  head::obs::Counter& deadline_counter =
      head::obs::GetCounter("serve.deadline_missed");
  const int64_t rejected_before = rejected_counter.value();
  const int64_t deadline_before = deadline_counter.value();

  Rng rng(seed * 2 + 1);
  std::vector<std::future<serve::DecisionReply>> futures;
  futures.reserve(requests);
  const double t0 = Now();
  double next_arrival = t0;
  for (int i = 0; i < requests; ++i) {
    next_arrival += -std::log(1.0 - rng.Uniform(0.0, 1.0)) / rate_rps;
    while (Now() < next_arrival) std::this_thread::yield();
    serve::DecisionRequest request;
    request.state = states[i % states.size()];
    futures.push_back(service.SubmitDecision(std::move(request)));
  }

  LoadPoint point;
  std::vector<double> latencies;
  latencies.reserve(requests);
  for (auto& f : futures) {
    const serve::DecisionReply reply = f.get();
    if (reply.status == serve::ServeStatus::kOk) {
      latencies.push_back(reply.latency_s);
    }
  }
  const double elapsed = Now() - t0;
  std::sort(latencies.begin(), latencies.end());
  point.offered_rps = rate_rps;
  point.achieved_rps = static_cast<double>(latencies.size()) / elapsed;
  point.p50_us = QuantileUs(latencies, 0.50);
  point.p95_us = QuantileUs(latencies, 0.95);
  point.p99_us = QuantileUs(latencies, 0.99);
  point.rejected = rejected_counter.value() - rejected_before;
  point.deadline_missed = deadline_counter.value() - deadline_before;
  return point;
}

/// Tape/pool alloc events per served request once every power-of-two bucket
/// up to max_batch is warm (each bucket's plan compiled, each executing
/// thread's replay context cloned). Counts only events inside DecideBatch /
/// PredictBatch — the serve replay path. Steady state must be exactly 0.
double MeasureServeAllocs(serve::ModelSnapshotRegistry& registry,
                          int max_batch, bool prediction) {
  serve::ServeConfig config;
  config.max_batch = max_batch;
  // Generous window: partial warmup waves must dispatch as one batch of the
  // exact bucket size rather than splitting.
  config.batch_window_us = 2000;
  config.queue_capacity = 8 * max_batch;
  serve::DecisionService service(&registry, config);
  const auto states = StatePool(64, 0xa110cu);
  Rng graph_rng(0xa110cu);
  std::vector<head::perception::StGraph> graphs;
  for (int i = 0; i < 8; ++i) graphs.push_back(RandomGraph(graph_rng));

  auto run_wave = [&](int n) {
    if (prediction) {
      std::vector<std::future<serve::PredictionReply>> futures;
      futures.reserve(n);
      for (int i = 0; i < n; ++i) {
        serve::PredictionRequest request;
        request.graph = graphs[i % graphs.size()];
        futures.push_back(service.SubmitPrediction(std::move(request)));
      }
      for (auto& f : futures) f.get();
    } else {
      RunDecisionWaves(service, states, n, n);
    }
  };

  for (int round = 0; round < 2; ++round) {
    for (int bucket = 1; bucket <= max_batch; bucket *= 2) run_wave(bucket);
  }

  head::obs::Counter& alloc_events = head::obs::GetCounter("serve.alloc_events");
  const int64_t before = alloc_events.value();
  const int measured_waves = 10;
  for (int w = 0; w < measured_waves; ++w) run_wave(max_batch);
  const int64_t after = alloc_events.value();
  return static_cast<double>(after - before) / (measured_waves * max_batch);
}

double BestOf(int trials, const std::function<double()>& measure) {
  double best = 0.0;
  for (int t = 0; t < trials; ++t) best = std::max(best, measure());
  return best;
}

double ArgValue(int argc, char** argv, const std::string& flag,
                double fallback) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return std::atof(arg.c_str() + prefix.size());
  }
  return fallback;
}

std::string ArgString(int argc, char** argv, const std::string& flag) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Minimal extraction of `"key":<number>` from a flat JSON file — enough for
/// the baseline format this binary itself writes.
bool ReadJsonNumber(const std::string& text, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::atof(text.c_str() + pos + needle.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* profile_env = std::getenv("HEAD_BENCH_PROFILE");
  const bool paper = profile_env && std::string(profile_env) == "paper";
  const int single_requests = paper ? 2000 : 400;
  const int batched_requests = paper ? 8192 : 2048;
  const int load_requests = paper ? 5000 : 1200;
  const int trials =
      static_cast<int>(ArgValue(argc, argv, "--trials", paper ? 2 : 3));
  const int max_batch =
      static_cast<int>(ArgValue(argc, argv, "--batch", 32));
  const int64_t window_us =
      static_cast<int64_t>(ArgValue(argc, argv, "--window-us", 200));

  const int threads = static_cast<int>(ArgValue(
      argc, argv, "--threads", head::parallel::ConfiguredThreadCount()));
  head::parallel::ThreadPool bench_pool(threads);
  head::parallel::GlobalPoolOverride pool_override(&bench_pool);

  const std::string kernel_flag = ArgString(argc, argv, "--kernel");
  if (kernel_flag == "scalar") {
    kernels::SetActiveIsa(kernels::Isa::kScalar);
  } else if (kernel_flag == "avx2") {
    if (!kernels::SetActiveIsa(kernels::Isa::kAvx2)) {
      std::cerr << "--kernel=avx2 requested but this machine/binary has no "
                << "AVX2+FMA backend (cpu: " << kernels::CpuCapabilityString()
                << ")\n";
      return 1;
    }
  } else if (!kernel_flag.empty()) {
    std::cerr << "unknown --kernel=" << kernel_flag
              << " (expected scalar|avx2)\n";
    return 1;
  }
  const kernels::Isa bench_isa = kernels::ActiveIsa();

  const std::string plans_flag = ArgString(argc, argv, "--plans");
  if (!plans_flag.empty() && plans_flag != "on" && plans_flag != "off") {
    std::cerr << "unknown --plans=" << plans_flag << " (expected on|off)\n";
    return 1;
  }
  // PlansEnabled() latches HEAD_PLANS on first call; nothing in this process
  // has touched the nn layer yet, so the flag can still override the env.
  if (!plans_flag.empty()) {
    setenv("HEAD_PLANS", plans_flag == "off" ? "0" : "1", /*overwrite=*/1);
  }
  const bool plans_on = head::nn::PlansEnabled();

  std::cout << "profile: " << (paper ? "paper" : "fast") << " (best of "
            << trials << " trials, " << threads << " threads, kernel "
            << kernels::IsaName(bench_isa) << ", cpu "
            << kernels::CpuCapabilityString() << ", plans "
            << (plans_on ? "on" : "off") << ", max_batch " << max_batch
            << ", window " << window_us << "us)\n";

  // One registry (and thus one snapshot with its plan caches) for every
  // phase: publication cost is not what this bench measures.
  serve::ModelSnapshotRegistry registry(PaperFactories(), /*keep=*/2);
  {
    Rng rng(0x5e17e);
    const head::rl::BpXNet x(kHidden, kAMax, rng);
    const head::rl::BpQNet q(kHidden, rng);
    const head::perception::LstGat predictor(head::perception::LstGatConfig{},
                                             rng);
    registry.Publish(x, q, &predictor);
  }

  const double single_rps = BestOf(
      trials, [&] { return MeasureSingleRps(registry, single_requests); });
  std::cout << "serve single-request: " << single_rps << " req/s\n";

  double mean_batch = 0.0;
  const double batched_rps = BestOf(trials, [&] {
    return MeasureBatchedRps(registry, max_batch, window_us, batched_requests,
                             &mean_batch);
  });
  const double speedup = single_rps > 0.0 ? batched_rps / single_rps : 0.0;
  std::cout << "serve batched: " << batched_rps << " req/s (mean batch "
            << mean_batch << ", speedup " << speedup << "x vs single)\n";

  // Three open-loop operating points against the measured batched capacity:
  // comfortable (0.3x), mid (0.6x, the gated point), near-saturation (0.9x).
  const double load_fractions[3] = {0.3, 0.6, 0.9};
  LoadPoint loads[3];
  for (int i = 0; i < 3; ++i) {
    loads[i] = MeasureLoadPoint(registry, max_batch, window_us,
                                load_fractions[i] * batched_rps, load_requests,
                                0x10adu + i);
    std::cout << "load " << load_fractions[i] << "x (" << loads[i].offered_rps
              << " req/s offered): achieved " << loads[i].achieved_rps
              << " req/s, p50 " << loads[i].p50_us << "us, p95 "
              << loads[i].p95_us << "us, p99 " << loads[i].p99_us
              << "us, rejected " << loads[i].rejected << ", deadline_missed "
              << loads[i].deadline_missed << "\n";
  }

  // Steady-state allocs per request on the replay path (0 when plans are
  // off: the eager fallback allocates by design and is not under this gate).
  double decide_allocs = 0.0;
  double predict_allocs = 0.0;
  if (plans_on) {
    decide_allocs =
        MeasureServeAllocs(registry, max_batch, /*prediction=*/false);
    predict_allocs =
        MeasureServeAllocs(registry, max_batch, /*prediction=*/true);
    std::cout << "steady-state allocs/request: decide " << decide_allocs
              << ", predict " << predict_allocs << "\n";
  }

  std::ostringstream json;
  json.precision(6);
  json << "{\"profile\":\"" << (paper ? "paper" : "fast") << "\","
       << "\"threads\":" << threads << ","
       << "\"kernel\":\"" << kernels::IsaName(bench_isa) << "\","
       << "\"cpu_capability\":\"" << kernels::CpuCapabilityString() << "\","
       << "\"fast_math\":" << (kernels::FastMathEnabled() ? "true" : "false")
       << ","
       << "\"plans\":\"" << (plans_on ? "on" : "off") << "\","
       << "\"max_batch\":" << max_batch << ","
       << "\"window_us\":" << window_us << ","
       << "\"serve_single_rps\":" << single_rps << ","
       << "\"serve_batched_rps\":" << batched_rps << ","
       << "\"serve_batch_speedup\":" << speedup << ","
       << "\"serve_mean_batch_size\":" << mean_batch;
  for (int i = 0; i < 3; ++i) {
    const std::string k = "serve_load" + std::to_string(i + 1);
    json << ",\"" << k << "_offered_rps\":" << loads[i].offered_rps << ",\""
         << k << "_achieved_rps\":" << loads[i].achieved_rps << ",\"" << k
         << "_p50_us\":" << loads[i].p50_us << ",\"" << k
         << "_p95_us\":" << loads[i].p95_us << ",\"" << k
         << "_p99_us\":" << loads[i].p99_us << ",\"" << k
         << "_rejected\":" << loads[i].rejected << ",\"" << k
         << "_deadline_missed\":" << loads[i].deadline_missed;
  }
  json << ",\"serve_allocs_per_request_steady\":" << decide_allocs << ","
       << "\"serve_pred_allocs_per_request_steady\":" << predict_allocs
       << "}";

  const std::string json_out = ArgString(argc, argv, "--json-out");
  if (!json_out.empty()) {
    std::ofstream os(json_out);
    os << json.str() << "\n";
    if (!os.good()) {
      std::cerr << "failed to write " << json_out << "\n";
      return 1;
    }
  }
  std::cout << json.str() << "\n";

  const std::string metrics_out = ArgString(argc, argv, "--metrics-out");
  if (!metrics_out.empty()) {
    head::nn::PublishAllocMetrics();
    if (!head::obs::WriteMetricsJsonFile(metrics_out)) {
      std::cerr << "failed to write " << metrics_out << "\n";
      return 1;
    }
    std::cout << "metrics written to " << metrics_out << "\n";
  }

  const double min_speedup = ArgValue(argc, argv, "--min-batch-speedup", 0.0);
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::cerr << "BATCHING REGRESSION: serve_batch_speedup = " << speedup
              << " < required " << min_speedup << "\n";
    return 1;
  }

  if (HasFlag(argc, argv, "--require-zero-allocs")) {
    if (!plans_on) {
      std::cout << "alloc gate skipped (plans off: eager fallback)\n";
    } else if (decide_allocs != 0.0 || predict_allocs != 0.0) {
      std::cerr << "ALLOC REGRESSION: steady-state tape/pool alloc events "
                << "per served request must be 0 (decide=" << decide_allocs
                << ", predict=" << predict_allocs << ")\n";
      return 1;
    } else {
      std::cout
          << "alloc gate ok: 0 tape/pool alloc events per steady request\n";
    }
  }

  const std::string baseline_path = ArgString(argc, argv, "--baseline");
  if (!baseline_path.empty()) {
    std::ifstream is(baseline_path);
    if (!is.good()) {
      std::cerr << "cannot read baseline " << baseline_path << "\n";
      return 1;
    }
    std::stringstream buf;
    buf << is.rdbuf();
    const double max_regress = ArgValue(argc, argv, "--max-regress", 0.30);
    struct Gate {
      const char* key;
      double current;
      bool lower_is_better;  ///< latency ceiling instead of throughput floor
    };
    const std::vector<Gate> gates = {
        {"serve_single_rps", single_rps, false},
        {"serve_batched_rps", batched_rps, false},
        {"serve_load2_p99_us", loads[1].p99_us, true},
    };
    for (const Gate& gate : gates) {
      double expected = 0.0;
      if (!ReadJsonNumber(buf.str(), gate.key, &expected)) {
        std::cerr << "baseline missing key " << gate.key << "\n";
        return 1;
      }
      if (gate.lower_is_better) {
        const double ceiling = expected * (1.0 + max_regress);
        if (gate.current > ceiling) {
          std::cerr << "PERF REGRESSION: " << gate.key << " = " << gate.current
                    << " > ceiling " << ceiling << " (baseline " << expected
                    << ", max regress " << max_regress * 100 << "%)\n";
          return 1;
        }
        std::cout << "perf gate ok: " << gate.key << " = " << gate.current
                  << " <= " << ceiling << "\n";
      } else {
        const double floor = expected * (1.0 - max_regress);
        if (gate.current < floor) {
          std::cerr << "PERF REGRESSION: " << gate.key << " = " << gate.current
                    << " < floor " << floor << " (baseline " << expected
                    << ", max regress " << max_regress * 100 << "%)\n";
          return 1;
        }
        std::cout << "perf gate ok: " << gate.key << " = " << gate.current
                  << " >= " << floor << "\n";
      }
    }
  }
  return 0;
}
