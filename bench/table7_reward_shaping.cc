// Table VII — Reward shaping: coordinate grid search over the hybrid-reward
// coefficients w1 (safety), w2 (efficiency), w3 (comfort), w4 (impact),
// reporting the best value per coefficient. The paper's grid:
//   w1 ∈ [0.5, 1] step 0.1,  w2, w3 ∈ [0, 1] step 0.2,  w4 ∈ [0, 0.5] step 0.1
//
// Each grid point trains a (shortened) BP-DQN run and scores the greedy
// policy with a coefficient-independent fitness combining collision-free
// completion, velocity and low impact — so different reward weightings are
// comparable.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "eval/episode_runner.h"
#include "eval/table.h"
#include "eval/workbench.h"
#include "parallel/env_pool.h"
#include "rl/trainer.h"

namespace {

using namespace head;

eval::BenchProfile g_profile;
std::shared_ptr<perception::LstGat> g_predictor;

/// Coefficient-independent score of a trained policy (bigger is better):
/// completion-weighted velocity minus impact events and collision penalty.
double ScorePolicy(const core::HeadConfig& head,
                   std::shared_ptr<rl::PdqnAgent> agent) {
  auto policy = std::make_unique<core::HeadAgent>(
      head, g_predictor,
      std::static_pointer_cast<rl::PamdpAgent>(agent));
  eval::RunnerConfig runner;
  runner.sim = g_profile.rl_sim;
  runner.episodes = std::max(5, g_profile.test_episodes / 4);
  runner.seed_base = g_profile.seed * 1000 + 7;
  const eval::AggregateMetrics m = eval::RunPolicy(*policy, runner);
  const double completion =
      static_cast<double>(m.completed) / runner.episodes;
  return completion * m.avg_v_a_mps - 0.5 * m.avg_num_ca -
         10.0 * (static_cast<double>(m.collisions) / runner.episodes);
}

double TrainAndScore(const rl::RewardWeights& weights) {
  core::HeadConfig head =
      eval::MakeHeadConfig(g_profile, core::HeadVariant::Full());
  head.reward.weights = weights;
  Rng rng(g_profile.seed + 17);
  std::shared_ptr<rl::PdqnAgent> agent = rl::MakeBpDqnAgent(head.pdqn, rng);
  // Each sweep point trains with parallel collection. The pool is rebuilt
  // per point because the reward weights live inside the env config.
  const rl::EnvConfig env_config = head.MakeEnvConfig(g_profile.rl_sim);
  parallel::EnvPool envs(g_profile.rollout_envs, [&](int) {
    return std::make_unique<rl::DrivingEnv>(env_config, g_predictor.get(),
                                            g_profile.seed);
  });
  rl::RlTrainConfig train = g_profile.rl_train;
  // Shortened runs: the sweep needs a ranking, not a final policy.
  train.episodes = std::max(40, train.episodes / 10);
  train.seed = g_profile.seed + 29;
  rl::TrainAgent(*agent, envs, train);
  return ScorePolicy(head, agent);
}

struct SweepSpec {
  const char* name;
  double min;
  double max;
  double step;
  double* slot;  // coefficient being swept inside the weight set
};

void RunTable7() {
  g_profile = eval::BenchProfile::FromEnv();
  g_predictor = eval::TrainOrLoadLstGat(g_profile);

  rl::RewardWeights weights;  // start from the paper's best values
  SweepSpec sweeps[] = {
      {"w1", 0.5, 1.0, 0.1, &weights.safety},
      {"w2", 0.0, 1.0, 0.2, &weights.efficiency},
      {"w3", 0.0, 1.0, 0.2, &weights.comfort},
      {"w4", 0.0, 0.5, 0.1, &weights.impact},
  };

  eval::TablePrinter table({"Coefficient", "Min", "Max", "Step", "Best"});
  for (SweepSpec& sweep : sweeps) {
    double best_value = *sweep.slot;
    double best_score = -1e18;
    for (double v = sweep.min; v <= sweep.max + 1e-9; v += sweep.step) {
      *sweep.slot = v;
      const double score = TrainAndScore(weights);
      std::cout << "  " << sweep.name << "=" << eval::FormatDouble(v, 1)
                << " -> score " << eval::FormatDouble(score, 2) << "\n";
      if (score > best_score) {
        best_score = score;
        best_value = v;
      }
    }
    *sweep.slot = best_value;  // keep the winner for later coordinates
    table.AddRow({sweep.name, eval::FormatDouble(sweep.min, 1),
                  eval::FormatDouble(sweep.max, 1),
                  eval::FormatDouble(sweep.step, 1),
                  eval::FormatDouble(best_value, 1)});
  }
  table.Print(std::cout, "Table VII — Effect of the hybrid-reward "
                         "coefficients (" + g_profile.name + " profile)");
}

void BM_SweepPoint(benchmark::State& state) {
  rl::RewardWeights weights;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrainAndScore(weights));
  }
}

}  // namespace

int main(int argc, char** argv) {
  RunTable7();
  benchmark::RegisterBenchmark("BM_SweepPoint", &BM_SweepPoint)
      ->Unit(benchmark::kSecond)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
