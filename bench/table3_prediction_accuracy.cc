// Table III — Accuracy of the state-prediction methods on REAL:
// MAE / MSE / RMSE of LSTM-MLP, ED-LSTM, GAS-LED and LST-GAT on the
// one-step state-prediction task (Sec. V-C break-down evaluation).
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "eval/table.h"
#include "eval/workbench.h"
#include "perception/baselines/ed_lstm.h"
#include "perception/baselines/gas_led.h"
#include "perception/baselines/lstm_mlp.h"
#include "perception/lst_gat.h"

namespace {

using namespace head;

struct ModelEntry {
  std::shared_ptr<perception::StatePredictor> model;
  perception::PredictionMetrics metrics;
};

std::vector<ModelEntry> g_models;
std::shared_ptr<data::RealDataset> g_dataset;

void RunTable3() {
  const eval::BenchProfile profile = eval::BenchProfile::FromEnv();
  g_dataset =
      std::make_shared<data::RealDataset>(eval::BuildRealDataset(profile));
  std::cout << "REAL surrogate: " << g_dataset->train.size() << " train / "
            << g_dataset->test.size() << " test samples\n";

  Rng rng(profile.seed);
  std::vector<std::shared_ptr<perception::StatePredictor>> models = {
      std::make_shared<perception::LstmMlp>(64, rng),
      std::make_shared<perception::EdLstm>(64, rng),
      std::make_shared<perception::GasLed>(64, rng),
      std::make_shared<perception::LstGat>(perception::LstGatConfig{}, rng),
  };

  eval::TablePrinter table({"Metric", "LSTM-MLP", "ED-LSTM", "GAS-LED",
                            "LST-GAT"});
  std::vector<std::string> mae_row = {"MAE"};
  std::vector<std::string> mse_row = {"MSE"};
  std::vector<std::string> rmse_row = {"RMSE"};
  for (auto& model : models) {
    perception::TrainPredictor(*model, g_dataset->train, profile.pred_train);
    const perception::PredictionMetrics m =
        perception::EvaluatePredictor(*model, g_dataset->test);
    mae_row.push_back(eval::FormatDouble(m.mae, 3));
    mse_row.push_back(eval::FormatDouble(m.mse, 3));
    rmse_row.push_back(eval::FormatDouble(m.rmse, 3));
    g_models.push_back({model, m});
  }
  table.AddRow(mae_row);
  table.AddRow(mse_row);
  table.AddRow(rmse_row);
  table.Print(std::cout, "Table III — Prediction accuracy on REAL (" +
                             profile.name + " profile; raw units: m, m/s)");
}

void BM_Evaluate(benchmark::State& state) {
  ModelEntry& entry = g_models[state.range(0)];
  state.SetLabel(entry.model->name());
  for (auto _ : state) {
    const perception::PredictionMetrics m =
        perception::EvaluatePredictor(*entry.model, g_dataset->test);
    benchmark::DoNotOptimize(m);
  }
  state.counters["MAE"] = entry.metrics.mae;
  state.counters["MSE"] = entry.metrics.mse;
  state.counters["RMSE"] = entry.metrics.rmse;
}

}  // namespace

int main(int argc, char** argv) {
  RunTable3();
  for (size_t i = 0; i < g_models.size(); ++i) {
    const std::string name = "BM_Evaluate/" + g_models[i].model->name();
    benchmark::RegisterBenchmark(name.c_str(), &BM_Evaluate)
        ->Arg(static_cast<int>(i))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
