// Ablation — graph attention vs. uniform mean aggregation: quantifies what
// the importance scores of Eq. (10) contribute to LST-GAT's accuracy, one
// of the design choices called out in DESIGN.md. Both variants share the
// architecture; the ablated one fixes α = 1/7.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "eval/table.h"
#include "eval/workbench.h"
#include "perception/lst_gat.h"
#include "perception/trainer.h"

namespace {

using namespace head;

std::shared_ptr<perception::LstGat> g_attention;
std::shared_ptr<perception::LstGat> g_mean;
std::shared_ptr<data::RealDataset> g_dataset;

void RunAblation() {
  const eval::BenchProfile profile = eval::BenchProfile::FromEnv();
  g_dataset =
      std::make_shared<data::RealDataset>(eval::BuildRealDataset(profile));

  Rng rng(profile.seed);
  perception::LstGatConfig with;
  perception::LstGatConfig without;
  without.use_attention = false;
  g_attention = std::make_shared<perception::LstGat>(with, rng);
  g_mean = std::make_shared<perception::LstGat>(without, rng);

  eval::TablePrinter table(
      {"Variant", "MAE", "MSE", "RMSE", "TCT (s)"});
  for (auto& [name, model] :
       {std::pair<std::string, std::shared_ptr<perception::LstGat>>{
            "LST-GAT (attention)", g_attention},
        {"LST-GAT (mean aggregation)", g_mean}}) {
    const perception::PredictionTrainResult result =
        perception::TrainPredictor(*model, g_dataset->train,
                                   profile.pred_train);
    const perception::PredictionMetrics m =
        perception::EvaluatePredictor(*model, g_dataset->test);
    table.AddRow({name, eval::FormatDouble(m.mae, 3),
                  eval::FormatDouble(m.mse, 3), eval::FormatDouble(m.rmse, 3),
                  eval::FormatDouble(result.convergence_seconds, 2)});
  }
  table.Print(std::cout,
              "Ablation — importance scores (Eq. 10) vs uniform mean "
              "aggregation (" + profile.name + " profile)");
}

void BM_Forward(benchmark::State& state) {
  auto& model = state.range(0) == 0 ? g_attention : g_mean;
  state.SetLabel(state.range(0) == 0 ? "attention" : "mean");
  const perception::StGraph& graph = g_dataset->test.front().graph;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Predict(graph));
  }
}

}  // namespace

int main(int argc, char** argv) {
  RunAblation();
  benchmark::RegisterBenchmark("BM_Forward", &BM_Forward)
      ->Arg(0)
      ->Arg(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
