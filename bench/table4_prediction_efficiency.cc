// Table IV — Efficiency of the state-prediction methods on REAL:
// TCT (training convergence time) and AvgIT (average inference time per
// surroundings-perception call, i.e., all six targets at once).
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "eval/table.h"
#include "eval/timer.h"
#include "eval/workbench.h"
#include "perception/baselines/ed_lstm.h"
#include "perception/baselines/gas_led.h"
#include "perception/baselines/lstm_mlp.h"
#include "perception/lst_gat.h"

namespace {

using namespace head;

struct ModelEntry {
  std::shared_ptr<perception::StatePredictor> model;
  double tct_s = 0.0;
  double avg_it_ms = 0.0;
};

std::vector<ModelEntry> g_models;
std::shared_ptr<data::RealDataset> g_dataset;

void RunTable4() {
  const eval::BenchProfile profile = eval::BenchProfile::FromEnv();
  g_dataset =
      std::make_shared<data::RealDataset>(eval::BuildRealDataset(profile));

  Rng rng(profile.seed);
  std::vector<std::shared_ptr<perception::StatePredictor>> models = {
      std::make_shared<perception::LstmMlp>(64, rng),
      std::make_shared<perception::EdLstm>(64, rng),
      std::make_shared<perception::GasLed>(64, rng),
      std::make_shared<perception::LstGat>(perception::LstGatConfig{}, rng),
  };

  eval::TablePrinter table(
      {"Metric", "LSTM-MLP", "ED-LSTM", "GAS-LED", "LST-GAT"});
  std::vector<std::string> tct_row = {"TCT (s)"};
  std::vector<std::string> it_row = {"AvgIT (ms)"};
  for (auto& model : models) {
    const perception::PredictionTrainResult result =
        perception::TrainPredictor(*model, g_dataset->train,
                                   profile.pred_train);
    const perception::StGraph& graph = g_dataset->test.front().graph;
    const double avg_it = eval::MeasureAvgMillis(
        [&] { benchmark::DoNotOptimize(model->Predict(graph)); }, 200, 20);
    tct_row.push_back(eval::FormatDouble(result.convergence_seconds, 2));
    it_row.push_back(eval::FormatDouble(avg_it, 3));
    g_models.push_back({model, result.convergence_seconds, avg_it});
  }
  table.AddRow(tct_row);
  table.AddRow(it_row);
  table.Print(std::cout, "Table IV — Prediction efficiency on REAL (" +
                             profile.name + " profile)");
}

void BM_Inference(benchmark::State& state) {
  ModelEntry& entry = g_models[state.range(0)];
  state.SetLabel(entry.model->name());
  const perception::StGraph& graph = g_dataset->test.front().graph;
  for (auto _ : state) {
    benchmark::DoNotOptimize(entry.model->Predict(graph));
  }
  state.counters["TCT_s"] = entry.tct_s;
  state.counters["AvgIT_ms"] = entry.avg_it_ms;
}

}  // namespace

int main(int argc, char** argv) {
  RunTable4();
  for (size_t i = 0; i < g_models.size(); ++i) {
    const std::string name = "BM_Inference/" + g_models[i].model->name();
    benchmark::RegisterBenchmark(name.c_str(), &BM_Inference)
        ->Arg(static_cast<int>(i))
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
