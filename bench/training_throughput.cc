// Training-hot-path throughput: RL transitions/sec through PdqnAgent::Update
// and prediction samples/sec through TrainPredictor, each measured on the
// per-sample reference path and the vectorized minibatch path. Emits JSON
// (--json-out) and optionally gates against a checked-in baseline
// (--baseline, --max-regress) so CI catches throughput regressions.
//
// Usage:
//   training_throughput [--json-out=path] [--baseline=path]
//                       [--max-regress=0.30] [--skip-per-sample] [--trials=N]
//                       [--kernel=scalar|avx2] [--skip-gemm] [--plans=on|off]
//                       [--profile-out=path] [--min-profile-coverage=0.95]
//
// --profile-out runs one additional *profiled* pass over the RL update,
// prediction training, and rollout paths (after and separate from the gate
// measurements, which always run unprofiled), prints the top-10 op table,
// and writes the head-profile-v1 JSON for tools/profile_diff.py.
// --min-profile-coverage fails the run if the profiled pass attributes less
// than the given fraction of root step time to per-op rows.
//
// --plans controls the static-execution-plan axis: the eager keys
// (rl_transitions_per_sec_batched etc.) are always measured with plans
// pinned OFF — they stay comparable to the committed eager baseline — and
// --plans=on (the default) measures the same paths again with capture/replay
// plans enabled, emitting the *_plan_* keys and speedups. --plans=off (or
// HEAD_PLANS=0) skips the plan pass and writes 0 for the plan keys.
//
// --kernel pins the SIMD backend for the end-to-end measurements (default:
// the best the CPU supports). The gemm_gflops axis below always measures
// both backends so one run reports the AVX2-vs-scalar speedup per shape.
//
// HEAD_BENCH_PROFILE=paper scales up the measured work; the default (fast)
// sizes fit a CI smoke stage.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/arena.h"
#include "nn/kernels/simd.h"
#include "nn/plan.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "parallel/env_pool.h"
#include "parallel/thread_pool.h"
#include "perception/lst_gat.h"
#include "perception/trainer.h"
#include "rl/pdqn_agent.h"

namespace {

using head::Rng;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

head::rl::AugmentedState RandomState(Rng& rng) {
  head::rl::AugmentedState s;
  s.h = head::nn::Tensor::Uniform(head::rl::kStateHRows, head::rl::kStateCols,
                                  -1.0, 1.0, rng);
  s.f = head::nn::Tensor::Uniform(head::rl::kStateFRows, head::rl::kStateCols,
                                  -1.0, 1.0, rng);
  return s;
}

/// Transitions/sec of PdqnAgent::Update on a warmed-up replay buffer (each
/// update consumes one minibatch through critic + actor).
double MeasureRlThroughput(bool batched, int updates, bool plans) {
  head::rl::PdqnConfig config;  // paper-scale nets: hidden 64, batch 64
  config.batched_updates = batched;
  config.static_plans = plans;
  Rng init(11);
  auto agent = head::rl::MakeBpDqnAgent(config, init);

  Rng data(21);
  for (int i = 0; i < config.warmup_transitions + config.batch_size; ++i) {
    const head::rl::AugmentedState s = RandomState(data);
    const head::rl::AugmentedState s2 = RandomState(data);
    head::rl::AgentAction action;
    action.behavior = data.UniformInt(0, head::rl::kNumBehaviors - 1);
    action.params = head::nn::Tensor::Uniform(1, head::rl::kNumBehaviors,
                                              -3.0, 3.0, data);
    action.maneuver.lane_change =
        head::rl::BehaviorToLaneChange(action.behavior);
    action.maneuver.accel_mps2 = action.params[action.behavior];
    agent->Remember(s, action, data.Uniform(-1.0, 1.0), s2,
                    /*terminal=*/i % 23 == 0);
  }

  Rng rng(31);
  agent->Update(rng);  // warm caches outside the timed region
  const double t0 = Now();
  for (int u = 0; u < updates; ++u) agent->Update(rng);
  const double elapsed = Now() - t0;
  return static_cast<double>(config.batch_size) * updates / elapsed;
}

/// Tape/pool alloc events (new arena chunks + tensor-pool misses) per
/// PdqnAgent::Update once the arena and pool are warm. The zero-allocation
/// claim of the arena+pool design: after warmup this must be exactly 0.
/// Caller-side index vectors (replay-sample pointers etc.) are plain heap and
/// outside the tape — they are not counted here by design.
double MeasureRlSteadyAllocs(int warmup_updates, int measured_updates,
                             bool plans) {
  head::rl::PdqnConfig config;
  config.batched_updates = true;
  config.static_plans = plans;
  Rng init(11);
  auto agent = head::rl::MakeBpDqnAgent(config, init);

  Rng data(21);
  for (int i = 0; i < config.warmup_transitions + config.batch_size; ++i) {
    const head::rl::AugmentedState s = RandomState(data);
    const head::rl::AugmentedState s2 = RandomState(data);
    head::rl::AgentAction action;
    action.behavior = data.UniformInt(0, head::rl::kNumBehaviors - 1);
    action.params = head::nn::Tensor::Uniform(1, head::rl::kNumBehaviors,
                                              -3.0, 3.0, data);
    action.maneuver.lane_change =
        head::rl::BehaviorToLaneChange(action.behavior);
    action.maneuver.accel_mps2 = action.params[action.behavior];
    agent->Remember(s, action, data.Uniform(-1.0, 1.0), s2,
                    /*terminal=*/i % 23 == 0);
  }

  Rng rng(31);
  for (int u = 0; u < warmup_updates; ++u) agent->Update(rng);
  const uint64_t before = head::nn::AllocEvents();
  for (int u = 0; u < measured_updates; ++u) agent->Update(rng);
  return static_cast<double>(head::nn::AllocEvents() - before) /
         measured_updates;
}

std::vector<head::perception::PredictionSample> MakeSamples(int count, int z,
                                                            Rng& rng) {
  std::vector<head::perception::PredictionSample> samples;
  samples.reserve(count);
  for (int n = 0; n < count; ++n) {
    head::perception::PredictionSample s;
    s.graph.steps.resize(z);
    for (auto& step : s.graph.steps) {
      for (auto& target : step.feat) {
        for (auto& node : target) {
          for (double& f : node) f = rng.Uniform(-1.0, 1.0);
        }
      }
    }
    for (int i = 0; i < head::perception::kNumAreas; ++i) {
      for (int c = 0; c < 3; ++c) {
        s.graph.target_rel_current[i][c] = rng.Uniform(-1.0, 1.0);
        s.truth.value[i][c] = rng.Uniform(-1.0, 1.0);
      }
      s.truth.valid[i] = rng.Uniform(0.0, 1.0) < 0.8;
    }
    samples.push_back(std::move(s));
  }
  return samples;
}

/// Samples/sec of TrainPredictor over LST-GAT at paper-scale widths.
/// Warmup-then-measure: one untimed TrainPredictor call warms the tensor
/// pool (and, on the plan pass, compiles the step plans into a shared cache
/// and instantiates the thread's replay clones), so the timed call measures
/// the steady state both keys claim — for plans that is pure replay, with
/// capture amortized away as it is in any training run longer than the
/// fast profile's two minibatches.
double MeasurePredictionThroughput(bool batched, int sample_count,
                                   int epochs, bool plans) {
  head::perception::LstGatConfig net_config;  // defaults: 64-wide, as paper
  Rng init(7);
  head::perception::LstGat model(net_config, init);
  Rng data(17);
  const auto samples = MakeSamples(sample_count, /*z=*/4, data);

  head::perception::PredictorPlanCache plan_cache;
  head::perception::PredictionTrainConfig config;
  config.epochs = epochs;
  config.batched = batched;
  config.static_plans = plans;
  config.plan_cache = &plan_cache;
  head::perception::TrainPredictor(model, samples, config);  // warmup
  const double t0 = Now();
  head::perception::TrainPredictor(model, samples, config);
  const double elapsed = Now() - t0;
  return static_cast<double>(sample_count) * epochs / elapsed;
}

/// Tape/pool alloc events per TrainPredictor minibatch step once warm: one
/// warmup epoch fills the arena and pool, then a measured epoch over the same
/// data must not touch the heap through either.
double MeasurePredSteadyAllocs(int sample_count, bool plans) {
  head::perception::LstGatConfig net_config;
  Rng init(7);
  head::perception::LstGat model(net_config, init);
  Rng data(17);
  const auto samples = MakeSamples(sample_count, /*z=*/4, data);

  head::perception::PredictorPlanCache plan_cache;
  head::perception::PredictionTrainConfig config;
  config.epochs = 1;
  config.batched = true;
  config.static_plans = plans;
  config.plan_cache = &plan_cache;  // measured epoch replays, no recapture
  // Two warmup epochs: the first compiles the plans (or, eager, fills the
  // pool); the second runs the measured path itself once so the pool holds
  // every buffer that path keeps in rotation. Only then is a step "warm".
  head::perception::TrainPredictor(model, samples, config);
  head::perception::TrainPredictor(model, samples, config);
  const uint64_t before = head::nn::AllocEvents();
  head::perception::TrainPredictor(model, samples, config);
  const int steps =
      (sample_count + config.batch_size - 1) / config.batch_size;
  return static_cast<double>(head::nn::AllocEvents() - before) / steps;
}

/// Env steps/sec collecting greedy episodes through an EnvPool of K envs on
/// the (already-overridden) global thread pool — the parallel-rollout axis
/// of the training hot path. Uses an untrained agent: rollout cost is
/// forward-pass + sim dominated and independent of weight values.
double MeasureRolloutThroughput(int num_envs, int episodes, bool plans) {
  head::rl::EnvConfig env_config;
  env_config.sim.road.length_m = 400.0;
  env_config.sim.spawn.back_margin_m = 120.0;
  env_config.sim.spawn.front_margin_m = 120.0;
  Rng init(13);
  head::perception::LstGat predictor(head::perception::LstGatConfig{}, init);
  predictor.set_static_plans(plans);
  head::rl::PdqnConfig config;
  config.static_plans = plans;
  Rng agent_rng(19);
  auto agent = head::rl::MakeBpDqnAgent(config, agent_rng);

  head::parallel::EnvPool pool(num_envs, [&](int) {
    return std::make_unique<head::rl::DrivingEnv>(env_config, &predictor, 1);
  });
  head::parallel::EnvPool::RolloutOptions opts;
  opts.seed_base = 97;
  opts.max_steps_per_episode = 200;
  // Warm one round outside the timed region.
  pool.RunEpisodes(*agent, 0, num_envs, opts);
  const double t0 = Now();
  const auto results = pool.RunEpisodes(*agent, 0, episodes, opts);
  const double elapsed = Now() - t0;
  long steps = 0;
  for (const auto& r : results) steps += r.steps;
  return static_cast<double>(steps) / elapsed;
}

// ---- gemm_gflops axis ----
//
// Microkernel throughput on the exact GEMM shapes the training hot path
// runs (paper-scale widths: hidden 64, batch 64, LSTM 4·64 gates over the
// 6-area × 7-node graph). Measured per backend through the kernel entry
// points, so the numbers isolate the SIMD layer from autograd overhead.

namespace kernels = head::nn::kernels;

// The kernel layer's transposition enum doubles as the bench op key, so the
// flops math below and the profiler share kernels::FlopsFor — one formula.
using GemmOp = kernels::GemmKind;

struct GemmShape {
  const char* name;  // json-key fragment
  GemmOp op;
  int m, n, k;
};

// m×n×k per op; A is (k×m) for TN, B is (n×k) for NT — all row-major.
const GemmShape kGemmShapes[] = {
    // LSTM gate pre-activation x·W_ih for a 6-area × 64-sample batch.
    {"lstm_gate_fwd", GemmOp::kNN, 384, 256, 64},
    // LSTM weight gradient dW = xᵀ·dgates.
    {"lstm_gate_dw", GemmOp::kTN, 64, 256, 384},
    // LSTM input gradient dx = dgates·W_hhᵀ.
    {"lstm_gate_dx", GemmOp::kNT, 384, 64, 256},
    // GAT φ₁ node embedding over all nodes of a minibatch.
    {"phi_embed", GemmOp::kNN, 2688, 64, 4},
    // BranchEncoder layer 1 over a 64-transition critic batch (7 rows each).
    {"branch_l1", GemmOp::kNN, 448, 64, 4},
    // Q-net fusion layer on the merged features.
    {"q_fuse", GemmOp::kNN, 64, 64, 16},
    // Attention score row — the n==1 dot-kernel path.
    {"attn_score", GemmOp::kNN, 42, 1, 64},
};

double MeasureGemmGflops(const GemmShape& s, Rng& rng) {
  const int a_rows = s.op == GemmOp::kTN ? s.k : s.m;
  const int a_cols = s.op == GemmOp::kTN ? s.m : s.k;
  const int b_rows = s.op == GemmOp::kNT ? s.n : s.k;
  const int b_cols = s.op == GemmOp::kNT ? s.k : s.n;
  const head::nn::Tensor a =
      head::nn::Tensor::Uniform(a_rows, a_cols, -1.0, 1.0, rng);
  const head::nn::Tensor b =
      head::nn::Tensor::Uniform(b_rows, b_cols, -1.0, 1.0, rng);
  head::nn::Tensor c(s.m, s.n);
  const auto run = [&] {
    switch (s.op) {
      case GemmOp::kNN:
        kernels::GemmNN(s.m, s.n, s.k, a.data().data(), b.data().data(),
                        nullptr, kernels::GemmInit::kZero, c.data().data());
        break;
      case GemmOp::kTN:
        kernels::GemmTN(s.m, s.n, s.k, a.data().data(), b.data().data(),
                        kernels::GemmInit::kZero, c.data().data());
        break;
      case GemmOp::kNT:
        kernels::GemmNT(s.m, s.n, s.k, a.data().data(), b.data().data(),
                        c.data().data());
        break;
    }
  };
  const double flops =
      static_cast<double>(kernels::FlopsFor(s.op, s.m, s.n, s.k));
  run();  // warm caches + thread-local panel scratch
  // Calibrate the repeat count for a ~20ms timed region.
  int reps = 4;
  for (;;) {
    const double t0 = Now();
    for (int r = 0; r < reps; ++r) run();
    const double elapsed = Now() - t0;
    if (elapsed >= 0.02 || reps >= (1 << 20)) {
      return flops * reps / elapsed / 1e9;
    }
    reps *= 4;
  }
}

double ArgValue(int argc, char** argv, const std::string& flag,
                double fallback) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return std::atof(arg.c_str() + prefix.size());
  }
  return fallback;
}

std::string ArgString(int argc, char** argv, const std::string& flag) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Best-of-N throughput: on a shared machine a single trial can be halved by
/// scheduling noise; the max over a few short trials is the stable signal the
/// regression gate needs.
double BestOf(int trials, const std::function<double()>& measure) {
  double best = 0.0;
  for (int t = 0; t < trials; ++t) best = std::max(best, measure());
  return best;
}

/// Minimal extraction of `"key":<number>` from a flat JSON file — enough for
/// the baseline format this binary itself writes.
bool ReadJsonNumber(const std::string& text, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::atof(text.c_str() + pos + needle.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* profile_env = std::getenv("HEAD_BENCH_PROFILE");
  const bool paper = profile_env && std::string(profile_env) == "paper";
  const int rl_updates = paper ? 200 : 30;
  const int pred_samples = paper ? 512 : 128;
  const int pred_epochs = paper ? 4 : 1;
  const int trials =
      static_cast<int>(ArgValue(argc, argv, "--trials", paper ? 2 : 3));
  const bool skip_per_sample = HasFlag(argc, argv, "--skip-per-sample");
  const int rollout_envs = paper ? 8 : 4;
  const int rollout_episodes = paper ? 32 : 12;

  // The threads axis: --threads=N routes every ParallelFor/EnvPool below
  // through an N-thread pool (default: HEAD_THREADS or hardware concurrency).
  const int threads = static_cast<int>(ArgValue(
      argc, argv, "--threads", head::parallel::ConfiguredThreadCount()));
  head::parallel::ThreadPool bench_pool(threads);
  head::parallel::GlobalPoolOverride pool_override(&bench_pool);

  // --plans controls the static-execution-plan axis: the eager keys
// (rl_transitions_per_sec_batched etc.) are always measured with plans
// pinned OFF — they stay comparable to the committed eager baseline — and
// --plans=on (the default) measures the same paths again with capture/replay
// plans enabled, emitting the *_plan_* keys and speedups. --plans=off (or
// HEAD_PLANS=0) skips the plan pass and writes 0 for the plan keys.
//
// --kernel pins the SIMD backend for everything measured below.
  const std::string kernel_flag = ArgString(argc, argv, "--kernel");
  if (kernel_flag == "scalar") {
    kernels::SetActiveIsa(kernels::Isa::kScalar);
  } else if (kernel_flag == "avx2") {
    if (!kernels::SetActiveIsa(kernels::Isa::kAvx2)) {
      std::cerr << "--kernel=avx2 requested but this machine/binary has no "
                << "AVX2+FMA backend (cpu: " << kernels::CpuCapabilityString()
                << ")\n";
      return 1;
    }
  } else if (!kernel_flag.empty()) {
    std::cerr << "unknown --kernel=" << kernel_flag
              << " (expected scalar|avx2)\n";
    return 1;
  }
  const kernels::Isa bench_isa = kernels::ActiveIsa();

  // --plans: measure the static-plan variants (default on; HEAD_PLANS=0
  // also disables them, since the library would fall back to eager anyway).
  const std::string plans_flag = ArgString(argc, argv, "--plans");
  if (!plans_flag.empty() && plans_flag != "on" && plans_flag != "off") {
    std::cerr << "unknown --plans=" << plans_flag << " (expected on|off)\n";
    return 1;
  }
  const bool measure_plans = plans_flag != "off" && head::nn::PlansEnabled();

  std::cout << "profile: " << (paper ? "paper" : "fast") << " (best of "
            << trials << " trials, " << threads << " threads, kernel "
            << kernels::IsaName(bench_isa) << ", cpu "
            << kernels::CpuCapabilityString() << ", plans "
            << (measure_plans ? "on" : "off") << ")\n";

  // GEMM microkernel axis: both backends on the training-hot-path shapes.
  std::ostringstream gemm_json;
  gemm_json.precision(6);
  double speedup_log_sum = 0.0;
  int speedup_count = 0;
  double avx2_best = 0.0;
  if (!HasFlag(argc, argv, "--skip-gemm")) {
    const bool has_avx2 = kernels::CpuSupportsAvx2Fma();
    Rng gemm_rng(53);
    for (const GemmShape& s : kGemmShapes) {
      kernels::SetActiveIsa(kernels::Isa::kScalar);
      const double scalar_gflops =
          BestOf(trials, [&] { return MeasureGemmGflops(s, gemm_rng); });
      double avx2_gflops = 0.0;
      if (has_avx2) {
        kernels::SetActiveIsa(kernels::Isa::kAvx2);
        avx2_gflops =
            BestOf(trials, [&] { return MeasureGemmGflops(s, gemm_rng); });
        avx2_best = std::max(avx2_best, avx2_gflops);
        speedup_log_sum += std::log(avx2_gflops / scalar_gflops);
        ++speedup_count;
      }
      std::cout << "gemm " << s.name << " (" << s.m << "x" << s.n << "x"
                << s.k << "): scalar " << scalar_gflops << " gflops";
      if (has_avx2) {
        std::cout << ", avx2 " << avx2_gflops << " gflops (speedup "
                  << avx2_gflops / scalar_gflops << "x)";
      }
      std::cout << "\n";
      gemm_json << "\"gemm_" << s.name << "_scalar_gflops\":" << scalar_gflops
                << ",\"gemm_" << s.name << "_avx2_gflops\":" << avx2_gflops
                << ",";
    }
    kernels::SetActiveIsa(bench_isa);  // restore the --kernel selection
  }
  const double gemm_speedup_geomean =
      speedup_count > 0 ? std::exp(speedup_log_sum / speedup_count) : 0.0;
  if (speedup_count > 0) {
    std::cout << "gemm avx2 speedup geomean: " << gemm_speedup_geomean
              << "x\n";
  }

  // Eager reference pass: plans pinned OFF so these keys keep measuring the
  // arena/pool eager path the committed baseline was recorded on.
  const double rl_batched = BestOf(trials, [&] {
    return MeasureRlThroughput(/*batched=*/true, rl_updates, /*plans=*/false);
  });
  std::cout << "rl batched:       " << rl_batched << " transitions/sec\n";
  const double pred_batched = BestOf(trials, [&] {
    return MeasurePredictionThroughput(/*batched=*/true, pred_samples,
                                       pred_epochs, /*plans=*/false);
  });
  std::cout << "pred batched:     " << pred_batched << " samples/sec\n";
  const double rollout = BestOf(trials, [&] {
    return MeasureRolloutThroughput(rollout_envs, rollout_episodes,
                                    /*plans=*/false);
  });
  std::cout << "rollout (K=" << rollout_envs << "): " << rollout
            << " env steps/sec\n";

  // Static-plan pass: the same paths with capture/replay plans enabled.
  double rl_plan = 0.0;
  double pred_plan = 0.0;
  double rollout_plan = 0.0;
  if (measure_plans) {
    rl_plan = BestOf(trials, [&] {
      return MeasureRlThroughput(/*batched=*/true, rl_updates, /*plans=*/true);
    });
    std::cout << "rl plan replay:   " << rl_plan
              << " transitions/sec (plan speedup " << rl_plan / rl_batched
              << "x)\n";
    pred_plan = BestOf(trials, [&] {
      return MeasurePredictionThroughput(/*batched=*/true, pred_samples,
                                         pred_epochs, /*plans=*/true);
    });
    std::cout << "pred plan replay: " << pred_plan
              << " samples/sec (plan speedup " << pred_plan / pred_batched
              << "x)\n";
    rollout_plan = BestOf(trials, [&] {
      return MeasureRolloutThroughput(rollout_envs, rollout_episodes,
                                      /*plans=*/true);
    });
    std::cout << "rollout plan (K=" << rollout_envs << "): " << rollout_plan
              << " env steps/sec (plan speedup " << rollout_plan / rollout
              << "x)\n";
  }

  // Steady-state allocation audit: tape/pool heap events per update after
  // warmup. The arena + tensor-pool hot path is designed to make these 0 —
  // and plan replay must stay 0 too (it builds no graphs at all).
  const double rl_allocs = MeasureRlSteadyAllocs(/*warmup_updates=*/4,
                                                 /*measured_updates=*/8,
                                                 /*plans=*/false);
  const double pred_allocs =
      MeasurePredSteadyAllocs(/*sample_count=*/32, /*plans=*/false);
  std::cout << "rl steady allocs:   " << rl_allocs << " events/update\n";
  std::cout << "pred steady allocs: " << pred_allocs << " events/step\n";
  double rl_plan_allocs = 0.0;
  double pred_plan_allocs = 0.0;
  if (measure_plans) {
    rl_plan_allocs = MeasureRlSteadyAllocs(/*warmup_updates=*/4,
                                           /*measured_updates=*/8,
                                           /*plans=*/true);
    pred_plan_allocs =
        MeasurePredSteadyAllocs(/*sample_count=*/32, /*plans=*/true);
    std::cout << "rl plan steady allocs:   " << rl_plan_allocs
              << " events/update\n";
    std::cout << "pred plan steady allocs: " << pred_plan_allocs
              << " events/step\n";
  }

  double rl_per_sample = 0.0;
  double pred_per_sample = 0.0;
  if (!skip_per_sample) {
    rl_per_sample = BestOf(trials, [&] {
      return MeasureRlThroughput(/*batched=*/false, rl_updates,
                                 /*plans=*/false);
    });
    std::cout << "rl per-sample:    " << rl_per_sample
              << " transitions/sec (speedup "
              << rl_batched / rl_per_sample << "x)\n";
    pred_per_sample = BestOf(trials, [&] {
      return MeasurePredictionThroughput(/*batched=*/false, pred_samples,
                                         pred_epochs, /*plans=*/false);
    });
    std::cout << "pred per-sample:  " << pred_per_sample
              << " samples/sec (speedup " << pred_batched / pred_per_sample
              << "x)\n";
  }

  std::ostringstream json;
  json.precision(6);
  json << "{\"profile\":\"" << (paper ? "paper" : "fast") << "\","
       << "\"threads\":" << threads << ","
       << "\"kernel\":\"" << kernels::IsaName(bench_isa) << "\","
       << "\"cpu_capability\":\"" << kernels::CpuCapabilityString() << "\","
       << "\"fast_math\":" << (kernels::FastMathEnabled() ? "true" : "false")
       << "," << gemm_json.str()
       << "\"gemm_avx2_speedup_geomean\":" << gemm_speedup_geomean << ","
       << "\"rollout_envs\":" << rollout_envs << ","
       << "\"rollout_env_steps_per_sec\":" << rollout << ","
       << "\"rl_transitions_per_sec_batched\":" << rl_batched << ","
       << "\"rl_transitions_per_sec_per_sample\":" << rl_per_sample << ","
       << "\"rl_speedup\":"
       << (rl_per_sample > 0 ? rl_batched / rl_per_sample : 0.0) << ","
       << "\"pred_samples_per_sec_batched\":" << pred_batched << ","
       << "\"pred_samples_per_sec_per_sample\":" << pred_per_sample << ","
       << "\"pred_speedup\":"
       << (pred_per_sample > 0 ? pred_batched / pred_per_sample : 0.0) << ","
       << "\"rl_allocs_per_step_steady\":" << rl_allocs << ","
       << "\"pred_allocs_per_step_steady\":" << pred_allocs << ","
       << "\"plans\":\"" << (measure_plans ? "on" : "off") << "\","
       << "\"rl_plan_transitions_per_sec_batched\":" << rl_plan << ","
       << "\"rl_plan_speedup\":"
       << (rl_batched > 0 ? rl_plan / rl_batched : 0.0) << ","
       << "\"pred_plan_samples_per_sec_batched\":" << pred_plan << ","
       << "\"pred_plan_speedup\":"
       << (pred_batched > 0 ? pred_plan / pred_batched : 0.0) << ","
       << "\"rollout_plan_env_steps_per_sec\":" << rollout_plan << ","
       << "\"rollout_plan_speedup\":"
       << (rollout > 0 ? rollout_plan / rollout : 0.0) << ","
       << "\"rl_plan_allocs_per_step_steady\":" << rl_plan_allocs << ","
       << "\"pred_plan_allocs_per_step_steady\":" << pred_plan_allocs
       << "}";

  const std::string json_out = ArgString(argc, argv, "--json-out");
  if (!json_out.empty()) {
    std::ofstream os(json_out);
    os << json.str() << "\n";
    if (!os.good()) {
      std::cerr << "failed to write " << json_out << "\n";
      return 1;
    }
  }
  std::cout << json.str() << "\n";

  // --metrics-out: export the full obs registry (including the nn_alloc_*
  // arena/pool gauges published here) as a metrics JSON snapshot.
  const std::string metrics_out = ArgString(argc, argv, "--metrics-out");
  if (!metrics_out.empty()) {
    head::nn::PublishAllocMetrics();
    // SIMD capability stamp + kernel-axis gauges for the snapshot.
    head::obs::GetGauge("nn.simd.kernel_avx2")
        .Set(bench_isa == kernels::Isa::kAvx2 ? 1.0 : 0.0);
    head::obs::GetGauge("nn.simd.cpu_avx2_fma")
        .Set(kernels::CpuSupportsAvx2Fma() ? 1.0 : 0.0);
    head::obs::GetGauge("nn.simd.fast_math")
        .Set(kernels::FastMathEnabled() ? 1.0 : 0.0);
    if (speedup_count > 0) {
      head::obs::GetGauge("nn.simd.gemm_gflops_avx2_best").Set(avx2_best);
      head::obs::GetGauge("nn.simd.gemm_avx2_speedup_geomean")
          .Set(gemm_speedup_geomean);
    }
    if (!head::obs::WriteMetricsJsonFile(metrics_out)) {
      std::cerr << "failed to write " << metrics_out << "\n";
      return 1;
    }
    std::cout << "metrics written to " << metrics_out << "\n";
  }

  // --require-zero-allocs: hard gate on the zero-allocation steady state.
  if (HasFlag(argc, argv, "--require-zero-allocs")) {
    if (rl_allocs != 0.0 || pred_allocs != 0.0 || rl_plan_allocs != 0.0 ||
        pred_plan_allocs != 0.0) {
      std::cerr << "ALLOC REGRESSION: steady-state tape/pool alloc events "
                << "per step must be 0 (rl=" << rl_allocs
                << ", pred=" << pred_allocs
                << ", rl_plan=" << rl_plan_allocs
                << ", pred_plan=" << pred_plan_allocs << ")\n";
      return 1;
    }
    std::cout << "alloc gate ok: 0 tape/pool alloc events per steady step"
              << (measure_plans ? " (eager and plan replay)" : "") << "\n";
  }

  // Regression gate: current batched throughput must stay within
  // --max-regress of the checked-in baseline.
  const std::string baseline_path = ArgString(argc, argv, "--baseline");
  if (!baseline_path.empty()) {
    std::ifstream is(baseline_path);
    if (!is.good()) {
      std::cerr << "cannot read baseline " << baseline_path << "\n";
      return 1;
    }
    std::stringstream buf;
    buf << is.rdbuf();
    const double max_regress = ArgValue(argc, argv, "--max-regress", 0.30);
    struct Gate {
      const char* key;
      double current;
      bool required;  ///< missing baseline key is an error (vs. skip)
    };
    std::vector<Gate> gates = {
        {"rl_transitions_per_sec_batched", rl_batched, true},
        {"pred_samples_per_sec_batched", pred_batched, true},
        {"rollout_env_steps_per_sec", rollout, true},
    };
    if (measure_plans) {
      // Optional so an older eager-only baseline still gates the eager keys.
      gates.push_back({"rl_plan_transitions_per_sec_batched", rl_plan, false});
      gates.push_back({"pred_plan_samples_per_sec_batched", pred_plan, false});
      gates.push_back(
          {"rollout_plan_env_steps_per_sec", rollout_plan, false});
    }
    for (const auto& gate : gates) {
      double expected = 0.0;
      if (!ReadJsonNumber(buf.str(), gate.key, &expected)) {
        if (!gate.required) {
          std::cout << "perf gate skipped (baseline lacks " << gate.key
                    << ")\n";
          continue;
        }
        std::cerr << "baseline missing key " << gate.key << "\n";
        return 1;
      }
      const double floor = expected * (1.0 - max_regress);
      if (gate.current < floor) {
        std::cerr << "PERF REGRESSION: " << gate.key << " = " << gate.current
                  << " < floor " << floor << " (baseline " << expected
                  << ", max regress " << max_regress * 100 << "%)\n";
        return 1;
      }
      std::cout << "perf gate ok: " << gate.key << " = " << gate.current
                << " >= " << floor << "\n";
    }
  }

  // --profile-out: one additional *profiled* pass over the training hot
  // paths. Kept separate from the timed measurements above so the perf gate
  // numbers are never polluted by profiler overhead.
  const std::string profile_out = ArgString(argc, argv, "--profile-out");
  if (!profile_out.empty()) {
    kernels::CalibrateProfilerRoofline();  // before Start: no stat pollution
    head::obs::StartProfiling();
    // The profiled pass runs the default execution mode: with plans on it
    // proves replay keeps per-op attribution (coverage gate below) intact.
    MeasureRlThroughput(/*batched=*/true, rl_updates, measure_plans);
    MeasurePredictionThroughput(/*batched=*/true, pred_samples, pred_epochs,
                                measure_plans);
    MeasureRolloutThroughput(rollout_envs, std::max(2, rollout_episodes / 4),
                             measure_plans);
    head::obs::StopProfiling();
    const head::obs::ProfileReport report = head::obs::CollectProfile();
    std::cout << head::obs::ProfileToText(report, /*top_n=*/10);
    std::ofstream os(profile_out);
    os << head::obs::ProfileToJson(report);
    if (!os.good()) {
      std::cerr << "failed to write " << profile_out << "\n";
      return 1;
    }
    std::cout << "profile written to " << profile_out << "\n";
    const double min_coverage =
        ArgValue(argc, argv, "--min-profile-coverage", 0.0);
    if (min_coverage > 0.0 && report.coverage < min_coverage) {
      std::cerr << "PROFILE COVERAGE: " << report.coverage
                << " below required " << min_coverage << "\n";
      return 1;
    }
  }
  return 0;
}
