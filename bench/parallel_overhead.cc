// Dispatch-overhead microbench for the parallel layer, and the measurement
// behind the matmul threshold choice (kParallelFlops = 2^18 multiply-adds
// in src/nn/tensor.cc).
//
// What it reports:
//  - BM_SubmitWait: round-trip latency of one Submit + future wait — the
//    per-task fixed cost of the pool's single-queue design.
//  - BM_ParallelForEmpty: a ParallelFor dispatch whose chunks do no work —
//    the fork/join floor paid by every above-threshold kernel call.
//  - BM_MatMul/<side>/<threads>: square MatMul across the threshold.
//    side=64 is ~2^18 multiply-adds, i.e. right at the threshold: the
//    1-thread and 4-thread times should be comparable there, with the
//    4-thread path pulling ahead above it (on a multi-core host) and the
//    dispatch floor dominating below it. That break-even point is why the
//    threshold sits at 2^18: below it the fork/join floor (tens of µs on
//    contended boxes) exceeds the kernel's serial runtime.
//
// Thread counts are explicit per benchmark (a local pool + the
// GlobalPoolOverride RAII), so the comparison is meaningful even when
// HEAD_THREADS or the hardware concurrency is 1.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "common/rng.h"
#include "nn/tensor.h"
#include "parallel/thread_pool.h"

namespace {

using namespace head;

void BM_SubmitWait(benchmark::State& state) {
  parallel::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    pool.Submit([] {}).wait();
  }
  state.SetLabel(std::to_string(pool.thread_count()) + " threads");
}
BENCHMARK(BM_SubmitWait)->Arg(1)->Arg(2)->Arg(4);

void BM_ParallelForEmpty(benchmark::State& state) {
  parallel::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    pool.ParallelFor(0, 1024, 64, [](int64_t, int64_t) {});
  }
  state.SetLabel(std::to_string(pool.thread_count()) + " threads");
}
BENCHMARK(BM_ParallelForEmpty)->Arg(1)->Arg(2)->Arg(4);

/// Square MatMul of side `range(0)` on a pool of `range(1)` threads. The
/// multiply-add count is side³: side 32 ≈ 2^15 (always inline), side 64 ≈
/// 2^18 (the threshold), side 128 ≈ 2^21 (always threaded when threads>1).
void BM_MatMul(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  parallel::ThreadPool pool(static_cast<int>(state.range(1)));
  parallel::GlobalPoolOverride overridden(&pool);
  Rng rng(42);
  const nn::Tensor a = nn::Tensor::Uniform(side, side, -1.0, 1.0, rng);
  const nn::Tensor b = nn::Tensor::Uniform(side, side, -1.0, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
  state.counters["madds"] = static_cast<double>(side) * side * side;
  state.SetLabel(std::to_string(side) + "^2 x " +
                 std::to_string(pool.thread_count()) + " threads");
}
BENCHMARK(BM_MatMul)
    ->Args({32, 1})
    ->Args({32, 4})
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({128, 1})
    ->Args({128, 4})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
