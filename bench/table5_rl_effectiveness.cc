// Table V — Effectiveness of the RL methods solving the PAMDP in the
// simulated environment: MinR / MaxR / AvgR (per-step reward statistics over
// greedy test episodes) for P-QP, P-DDPG, P-DQN and BP-DQN.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "eval/table.h"
#include "eval/workbench.h"
#include "parallel/env_pool.h"
#include "rl/p_ddpg.h"
#include "rl/pdqn_agent.h"
#include "rl/trainer.h"

namespace {

using namespace head;

struct AgentEntry {
  std::string name;
  std::shared_ptr<rl::PamdpAgent> agent;
  rl::RewardStats stats;
};

std::vector<AgentEntry> g_agents;
std::shared_ptr<perception::LstGat> g_predictor;
eval::BenchProfile g_profile;

std::shared_ptr<rl::PamdpAgent> MakeAgent(const std::string& name,
                                          const rl::PdqnConfig& config,
                                          Rng& rng) {
  if (name == "P-QP") return rl::MakePQpAgent(config, rng);
  if (name == "P-DDPG") {
    rl::PddpgConfig c;
    c.hidden = config.hidden;
    c.batch_size = config.batch_size;
    c.warmup_transitions = config.warmup_transitions;
    c.update_every = config.update_every;
    c.a_max = config.a_max;
    return std::make_shared<rl::PddpgAgent>(c, rng);
  }
  if (name == "P-DQN") return rl::MakePDqnAgent(config, rng);
  return rl::MakeBpDqnAgent(config, rng);
}

void RunTable5() {
  g_profile = eval::BenchProfile::FromEnv();
  g_predictor = eval::TrainOrLoadLstGat(g_profile);

  const core::HeadConfig head =
      eval::MakeHeadConfig(g_profile, core::HeadVariant::Full());

  eval::TablePrinter table({"Metric", "P-QP", "P-DDPG", "P-DQN", "BP-DQN"});
  std::vector<std::string> min_row = {"MinR"};
  std::vector<std::string> max_row = {"MaxR"};
  std::vector<std::string> avg_row = {"AvgR"};
  std::vector<std::string> coll_row = {"Collisions"};

  // One env pool reused by every method: training collects rounds of
  // K = rollout_envs episodes in parallel, and greedy evaluation fans the
  // test episodes across the same pool (per-episode seed streams make the
  // evaluation numbers identical to a serial run).
  parallel::EnvPool envs =
      eval::MakeEnvPool(g_profile, core::HeadVariant::Full(), g_predictor);
  for (const std::string name : {"P-QP", "P-DDPG", "P-DQN", "BP-DQN"}) {
    Rng rng(g_profile.seed + 17);
    std::shared_ptr<rl::PamdpAgent> agent =
        MakeAgent(name, head.pdqn, rng);
    rl::RlTrainConfig train = g_profile.rl_train;
    // Method comparison needs a ranking, not a final policy: half budget.
    train.episodes = std::max(100, train.episodes / 2);
    train.seed = g_profile.seed + 29;
    std::cout << "training " << name << " (" << train.episodes
              << " episodes, K=" << envs.size() << " envs)...\n";
    rl::TrainAgent(*agent, envs, train);
    const rl::RewardStats stats = rl::EvaluateAgent(
        *agent, envs, g_profile.test_episodes, g_profile.seed * 1000);
    min_row.push_back(eval::FormatDouble(stats.min_reward, 2));
    max_row.push_back(eval::FormatDouble(stats.max_reward, 2));
    avg_row.push_back(eval::FormatDouble(stats.avg_reward, 2));
    coll_row.push_back(std::to_string(stats.collisions));
    g_agents.push_back({name, agent, stats});
  }
  table.AddRow(min_row);
  table.AddRow(max_row);
  table.AddRow(avg_row);
  table.AddRow(coll_row);
  table.Print(std::cout, "Table V — RL effectiveness (" + g_profile.name +
                             " profile, " +
                             std::to_string(g_profile.test_episodes) +
                             " greedy test episodes)");
}

void BM_GreedyEpisode(benchmark::State& state) {
  AgentEntry& entry = g_agents[state.range(0)];
  state.SetLabel(entry.name);
  const core::HeadConfig head =
      eval::MakeHeadConfig(g_profile, core::HeadVariant::Full());
  rl::DrivingEnv env(head.MakeEnvConfig(g_profile.rl_sim), g_predictor.get(),
                     g_profile.seed);
  uint64_t seed = g_profile.seed * 555;
  for (auto _ : state) {
    const rl::RewardStats s = rl::EvaluateAgent(*entry.agent, env, 1, seed++);
    benchmark::DoNotOptimize(s);
  }
  state.counters["MinR"] = entry.stats.min_reward;
  state.counters["MaxR"] = entry.stats.max_reward;
  state.counters["AvgR"] = entry.stats.avg_reward;
}

}  // namespace

int main(int argc, char** argv) {
  RunTable5();
  for (size_t i = 0; i < g_agents.size(); ++i) {
    const std::string name = "BM_GreedyEpisode/" + g_agents[i].name;
    benchmark::RegisterBenchmark(name.c_str(), &BM_GreedyEpisode)
        ->Arg(static_cast<int>(i))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
