// Pre-trains every component the bench suite needs and stores the weights
// in the cache directory (.head_cache/), so the table benches start from
// warm caches instead of retraining. Useful before running
// `for b in build/bench/*; do $b; done`.
//
//   ./build/examples/pretrain_all
#include <cstdio>

#include "eval/workbench.h"

int main() {
  using namespace head;
  const eval::BenchProfile profile = eval::BenchProfile::FromEnv();
  std::printf("pretraining all components (%s profile) into %s/\n",
              profile.name.c_str(), profile.cache_dir.c_str());
  auto predictor = eval::TrainOrLoadLstGat(profile);
  eval::TrainOrLoadHeadPolicy(profile, core::HeadVariant::Full(), predictor);
  eval::TrainOrLoadDrlSc(profile, predictor);
  eval::TrainOrLoadHeadPolicy(profile, core::HeadVariant::WithoutPvc(),
                              predictor);
  eval::TrainOrLoadHeadPolicy(profile, core::HeadVariant::WithoutLstGat(),
                              predictor);
  eval::TrainOrLoadHeadPolicy(profile, core::HeadVariant::WithoutBpDqn(),
                              predictor);
  eval::TrainOrLoadHeadPolicy(profile, core::HeadVariant::WithoutImpact(),
                              predictor);
  std::printf("done.\n");
  return 0;
}
