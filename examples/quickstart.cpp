// Quickstart: the minimal end-to-end HEAD pipeline.
//
// 1. Generate a small REAL-surrogate trajectory corpus and train the
//    LST-GAT one-step state predictor on it.
// 2. Train the BP-DQN maneuver-decision agent in the simulated environment
//    with the hybrid (safety/efficiency/comfort/impact) reward.
// 3. Drive one test episode with the trained HEAD agent and print what it
//    does step by step.
//
// Run:  ./build/examples/quickstart
//
// Set HEAD_TRACE_OUT=trace.json to record a Chrome trace of the whole run
// (open it in chrome://tracing or https://ui.perfetto.dev).
#include <cstdio>
#include <cstdlib>

#include "core/head_agent.h"
#include "obs/span.h"
#include "data/real_dataset.h"
#include "eval/episode_runner.h"
#include "eval/workbench.h"
#include "perception/trainer.h"
#include "nn/serialize.h"
#include "rl/trainer.h"

int main() {
  using namespace head;

  const char* trace_out = std::getenv("HEAD_TRACE_OUT");
  if (trace_out != nullptr && trace_out[0] != '\0') {
    obs::SetTracingEnabled(true);
  }

  // A deliberately tiny profile so the whole demo runs in well under a
  // minute; see bench/ for the real experiment harness.
  eval::BenchProfile profile = eval::BenchProfile::Fast();
  profile.name = "quickstart";
  profile.real.episodes = 2;
  profile.real.max_steps_per_episode = 120;
  profile.pred_train.epochs = 3;
  profile.rl_sim.road.length_m = 500.0;
  profile.rl_train.episodes = 12;
  profile.pdqn.warmup_transitions = 200;

  std::printf("== 1. training the LST-GAT state predictor ==\n");
  const data::RealDataset dataset = eval::BuildRealDataset(profile);
  std::printf("   REAL surrogate: %zu train / %zu test samples\n",
              dataset.train.size(), dataset.test.size());
  Rng rng(7);
  auto predictor = std::make_shared<perception::LstGat>(
      perception::LstGatConfig(), rng);
  const perception::PredictionTrainResult pred_result =
      perception::TrainPredictor(*predictor, dataset.train,
                                 profile.pred_train);
  const perception::PredictionMetrics metrics =
      perception::EvaluatePredictor(*predictor, dataset.test);
  std::printf("   trained %d epochs in %.1fs — test MAE=%.3f RMSE=%.3f\n",
              profile.pred_train.epochs, pred_result.total_seconds,
              metrics.mae, metrics.rmse);

  std::printf("== 2. training the BP-DQN maneuver-decision agent ==\n");
  const core::HeadVariant variant = core::HeadVariant::Full();
  const core::HeadConfig head_config = eval::MakeHeadConfig(profile, variant);
  Rng agent_rng(11);
  std::shared_ptr<rl::PdqnAgent> agent =
      rl::MakeBpDqnAgent(head_config.pdqn, agent_rng);
  rl::DrivingEnv env(head_config.MakeEnvConfig(profile.rl_sim),
                     predictor.get(), /*seed=*/1);
  const rl::RlTrainResult rl_result =
      rl::TrainAgent(*agent, env, profile.rl_train);
  std::printf("   %d episodes in %.1fs — last mean step reward %.3f\n",
              profile.rl_train.episodes, rl_result.total_seconds,
              rl_result.episode_rewards.back());

  std::printf("== 3. driving one test episode with HEAD ==\n");
  // The 12-episode agent above is a toy; if a fully trained policy exists in
  // the bench cache (e.g. after running the benches or pretrain_all), drive
  // with that one instead so the demo shows converged behavior.
  std::shared_ptr<rl::PdqnAgent> demo_agent = agent;
  {
    eval::BenchProfile fast = eval::BenchProfile::Fast();
    fast.rl_sim.road = profile.rl_sim.road;
    Rng cache_rng(11);
    auto cached = rl::MakeBpDqnAgent(
        eval::MakeHeadConfig(fast, variant).pdqn, cache_rng);
    // Reuse the workbench cache path convention.
    class Both : public nn::Module {
     public:
      explicit Both(rl::PdqnAgent& a) : a_(a) {}
      std::vector<nn::Var> Params() const override {
        std::vector<nn::Var> p = a_.x_net().Params();
        for (const nn::Var& v : a_.q_net().Params()) p.push_back(v);
        return p;
      }
     private:
      rl::PdqnAgent& a_;
    } params(*cached);
    if (nn::LoadParamsFromFile(params, ".head_cache/policy_HEAD_fast.bin")) {
      cached->SyncTargets();
      demo_agent = std::move(cached);
      std::printf("   (driving with the fully trained cached policy)\n");
    } else {
      std::printf("   (driving with the 12-episode toy policy — expect "
                  "rough maneuvers; run examples/pretrain_all first for a "
                  "converged one)\n");
    }
  }
  auto policy = eval::MakePolicy(profile, variant, predictor, demo_agent);
  sim::Simulation sim(profile.rl_sim, /*seed=*/4242);
  policy->OnEpisodeStart();
  double prev_accel = 0.0;
  int lane_changes = 0;
  while (sim.status() == sim::EpisodeStatus::kRunning) {
    HEAD_SPAN("episode.step");
    decision::EgoView view;
    view.ego = sim.ego_state();
    view.observed =
        sensor::Observe(sim.GlobalSnapshot(), sim.ego_state(),
                        head_config.sensor, profile.rl_sim.road);
    view.prev_accel_mps2 = prev_accel;
    const Maneuver m = policy->Decide(view);
    prev_accel = m.accel_mps2;
    if (m.lane_change != LaneChange::kKeep) ++lane_changes;
    if (sim.step_count() % 20 == 0) {
      std::printf(
          "   t=%5.1fs lane=%d lon=%6.1fm v=%4.1fm/s (%zu vehicles seen) "
          "-> %s a=%+.2f\n",
          sim.time_s(), view.ego.lane, view.ego.lon_m, view.ego.v_mps,
          view.observed.size(), ToString(m.lane_change), m.accel_mps2);
    }
    sim.Step(m);
  }
  std::printf("   episode over: %s after %.1fs (%d lane changes)\n",
              ToString(sim.status()), sim.time_s(), lane_changes);
  if (trace_out != nullptr && trace_out[0] != '\0') {
    if (obs::WriteChromeTraceFile(trace_out)) {
      std::printf("   wrote Chrome trace to %s\n", trace_out);
    } else {
      std::fprintf(stderr, "   failed to write trace to %s\n", trace_out);
      return 1;
    }
  }
  return 0;
}
