// Train the BP-DQN maneuver-decision agent from scratch and watch the
// learning curve. Useful for tuning and as a template for custom training.
//
//   ./build/examples/train_decision [episodes] [seed]
//
// Environment knobs: HEAD_BENCH_PROFILE=paper for the 3 km road.
#include <cstdio>
#include <cstdlib>

#include "eval/episode_runner.h"
#include "eval/workbench.h"
#include "rl/trainer.h"

int main(int argc, char** argv) {
  using namespace head;

  eval::BenchProfile profile = eval::BenchProfile::FromEnv();
  if (argc > 1) profile.rl_train.episodes = std::atoi(argv[1]);
  if (argc > 2) profile.seed = std::atoi(argv[2]);
  profile.rl_train.verbose = true;

  std::printf("training BP-DQN for %d episodes (%s profile, seed %llu)\n",
              profile.rl_train.episodes, profile.name.c_str(),
              static_cast<unsigned long long>(profile.seed));

  auto predictor = eval::TrainOrLoadLstGat(profile);
  rl::RlTrainResult result;
  auto agent = eval::TrainOrLoadHeadPolicy(profile, core::HeadVariant::Full(),
                                           predictor, &result,
                                           /*use_cache=*/false);

  // Learning curve, coarse: mean step reward in 10 buckets.
  const size_t n = result.episode_rewards.size();
  std::printf("\nlearning curve (mean step reward per decile):\n");
  for (int b = 0; b < 10; ++b) {
    const size_t lo = b * n / 10;
    const size_t hi = (b + 1) * n / 10;
    double sum = 0.0;
    for (size_t i = lo; i < hi; ++i) sum += result.episode_rewards[i];
    std::printf("  episodes %4zu-%-4zu : %+.3f\n", lo, hi,
                sum / std::max<size_t>(1, hi - lo));
  }
  std::printf("convergence: %.1fs of %.1fs total\n",
              result.convergence_seconds, result.total_seconds);

  // Greedy evaluation.
  auto policy =
      eval::MakePolicy(profile, core::HeadVariant::Full(), predictor, agent);
  eval::RunnerConfig runner;
  runner.sim = profile.rl_sim;
  runner.episodes = 10;
  runner.seed_base = profile.seed * 1000;
  const eval::AggregateMetrics m = eval::RunPolicy(*policy, runner);
  std::printf(
      "\ngreedy eval over %d episodes: DT-A=%.1fs V-A=%.2fm/s J-A=%.2f "
      "TTC=%.2fs #-CA=%.1f done=%d coll=%d\n",
      runner.episodes, m.avg_dt_a_s, m.avg_v_a_mps, m.avg_j_a_mps2,
      m.min_ttc_a_s, m.avg_num_ca, m.completed, m.collisions);
  return 0;
}
