// Trace & replay: records a full episode of a chosen policy in a chosen
// scenario, writes the per-step CSV, and replays a few frames as an ASCII
// top-down view of the road around the ego.
//
//   ./build/examples/replay_trace [scenario] [seed]
//   scenarios: paper | dense | bottleneck | stop_and_go
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "decision/idm_lc.h"
#include "eval/trace.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace head;

  const std::string scenario = argc > 1 ? argv[1] : "bottleneck";
  const uint64_t seed = argc > 2 ? std::atoll(argv[2]) : 99;

  eval::TraceConfig config;
  config.sim = sim::ScenarioByName(scenario);
  config.sim.road.length_m = std::min(config.sim.road.length_m, 800.0);

  decision::IdmLcPolicy policy(
      decision::RuleBasedConfig::ForRoad(config.sim.road));
  std::printf("recording one %s episode of %s (seed %llu)...\n",
              scenario.c_str(), policy.name().c_str(),
              static_cast<unsigned long long>(seed));
  const eval::EpisodeTrace trace = eval::RecordEpisode(policy, config, seed);
  std::printf("episode %s after %.1fs (%zu steps)\n",
              ToString(trace.final_status),
              trace.steps.empty() ? 0.0 : trace.steps.back().time_s,
              trace.steps.size());

  const std::string csv_path = "trace_" + scenario + ".csv";
  std::ofstream csv(csv_path);
  eval::WriteTraceCsv(trace, csv);
  std::printf("per-step CSV written to %s\n\n", csv_path.c_str());

  // Replay a handful of frames spread across the episode.
  const size_t n = trace.steps.size();
  for (size_t k = 0; k < 4 && n > 0; ++k) {
    const size_t idx = std::min(n - 1, k * (n / 4 + 1));
    std::cout << eval::RenderStep(trace.steps[idx], config.sim.road) << "\n";
  }
  std::printf("('E' = ego, 'o' = conventional vehicle, window ±60 m)\n");
  return 0;
}
