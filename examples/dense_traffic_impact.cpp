// Dense-traffic impact study: the motivating scenario of the paper's
// introduction. Runs the rule-based baselines through the same dense-traffic
// episodes and reports how strongly each driving style disturbs the vehicles
// behind it (the "domino effect" the impact reward is designed to prevent).
//
//   ./build/examples/dense_traffic_impact [episodes]
//
// Compares IDM-LC (calm), an aggressive IDM-LC variant (short headway, hard
// maneuvers — the "poor driving behavior" of the intro), and TP-BTS.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "decision/idm_lc.h"
#include "decision/tp_bts.h"
#include "eval/episode_runner.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace head;

  eval::RunnerConfig runner;
  runner.sim.road.length_m = 800.0;
  runner.sim.spawn.density_veh_per_km = 220.0;  // denser than the benchmarks
  runner.sim.spawn.back_margin_m = 250.0;
  runner.sim.spawn.front_margin_m = 250.0;
  runner.episodes = argc > 1 ? std::atoi(argv[1]) : 8;
  runner.seed_base = 31337;

  decision::RuleBasedConfig calm =
      decision::RuleBasedConfig::ForRoad(runner.sim.road);
  calm.params.time_headway_s = 1.6;
  calm.params.politeness = 0.5;
  calm.params.lc_threshold_mps2 = 0.3;

  decision::RuleBasedConfig aggressive =
      decision::RuleBasedConfig::ForRoad(runner.sim.road);
  aggressive.params.time_headway_s = 0.6;   // tailgates
  aggressive.params.min_gap_m = 1.0;
  aggressive.params.politeness = 0.0;       // forces lane changes
  aggressive.params.lc_threshold_mps2 = 0.05;
  aggressive.lane_change_cooldown_steps = 1;

  decision::TpBtsConfig tp;
  tp.road = runner.sim.road;

  decision::IdmLcPolicy calm_policy(calm);
  decision::IdmLcPolicy aggressive_policy(aggressive);
  decision::TpBtsPolicy tp_policy(tp);

  struct Row {
    const char* name;
    decision::Policy* policy;
  };
  Row rows[] = {
      {"IDM-LC (calm)", &calm_policy},
      {"IDM-LC (aggressive)", &aggressive_policy},
      {"TP-BTS", &tp_policy},
  };

  std::printf("dense traffic: %.0f veh/km over %d episodes\n\n",
              runner.sim.spawn.density_veh_per_km, runner.episodes);
  eval::TablePrinter table({"Driving style", "AvgV-A(m/s)", "Avg#-CA",
                            "AvgD-CA(m/s)", "AvgDT-C(s)", "Collisions"});
  for (const Row& row : rows) {
    const eval::AggregateMetrics m = eval::RunPolicy(*row.policy, runner);
    table.AddRow({row.name, eval::FormatDouble(m.avg_v_a_mps, 2),
                  eval::FormatDouble(m.avg_num_ca, 1),
                  eval::FormatDouble(m.avg_d_ca_mps, 2),
                  eval::FormatDouble(m.avg_dt_c_s, 1),
                  std::to_string(m.collisions)});
  }
  table.Print(std::cout, "Impact of driving style on the surrounding traffic");
  return 0;
}
