// Occlusion scenario: demonstrates the enhanced-perception module's phantom
// vehicle construction (paper Sec. III-B, Figs. 3/4) on a hand-built scene.
//
// A truck-like vehicle directly ahead hides the vehicle in front of it from
// the ego's sensor; the ego also sits in the leftmost lane (inherent
// missing) and most of the road is beyond the 100 m detection radius (range
// missing). The demo prints what the sensor sees, what goes missing and
// why, and how the constructed phantoms complete the spatial-temporal graph
// that LST-GAT consumes.
//
// Run:  ./build/examples/occlusion_scenario
#include <cstdio>

#include "perception/lst_gat.h"
#include "perception/phantom.h"
#include "perception/st_graph.h"
#include "sensor/sensor_model.h"

int main() {
  using namespace head;

  RoadConfig road;  // six lanes, 3 km — the paper's geometry
  sensor::SensorConfig sensor_config;
  sensor_config.range_m = 100.0;

  // Ground truth: ego in the leftmost lane; a blocker directly ahead; a
  // hidden vehicle beyond the blocker; a visible vehicle one lane over;
  // and a vehicle far beyond the detection radius.
  const VehicleState ego{1, 500.0, 20.0};
  std::vector<sim::VehicleSnapshot> ground_truth = {
      {kEgoVehicleId, ego},
      {1, {1, 530.0, 18.0}},   // blocker ahead (same lane)
      {2, {1, 565.0, 17.0}},   // hidden behind the blocker
      {3, {2, 540.0, 21.0}},   // visible front-right
      {4, {2, 720.0, 22.0}},   // out of range
      {5, {1, 460.0, 19.0}},   // behind the ego, visible
  };

  std::printf("ground truth (%zu conventional vehicles):\n",
              ground_truth.size() - 1);
  for (const auto& v : ground_truth) {
    if (v.id == kEgoVehicleId) continue;
    std::printf("  id %d: lane %d, lon %.0fm, v %.0fm/s\n", v.id,
                v.state.lane, v.state.lon_m, v.state.v_mps);
  }

  const auto observed =
      sensor::Observe(ground_truth, ego, sensor_config, road);
  std::printf("\nsensor output (R=%.0fm, occlusion on): %zu visible —",
              sensor_config.range_m, observed.size());
  for (const auto& v : observed) std::printf(" id %d", v.id);
  std::printf("\n  -> id 2 is hidden behind id 1; id 4 is out of range\n");

  // Build up z=5 steps of history (everything cruising at constant speed).
  perception::HistoryBuffer buffer(5);
  for (int k = 0; k < 5; ++k) {
    perception::ObservationFrame frame;
    const double dt = road.dt_s * k;
    frame.ego = {ego.lane, ego.lon_m - (4 - k) * ego.v_mps * road.dt_s,
                 ego.v_mps};
    for (const auto& v : ground_truth) {
      if (v.id == kEgoVehicleId) continue;
      sim::VehicleSnapshot past = v;
      past.state.lon_m -= (4 - k) * v.state.v_mps * road.dt_s;
      if (sensor::IsVisible(frame.ego, past, ground_truth, sensor_config,
                            road)) {
        frame.observed.push_back(past);
      }
    }
    (void)dt;
    buffer.Push(std::move(frame));
  }

  const perception::CompletedScene scene =
      perception::ConstructPhantoms(buffer, road, sensor_config.range_m);

  std::printf("\ncompleted scene — six targets around the ego:\n");
  for (int i = 0; i < perception::kNumAreas; ++i) {
    const perception::VehicleHistory& t = scene.targets[i];
    std::printf("  %-11s: ", ToString(static_cast<perception::Area>(i)));
    if (t.kind == perception::MissingKind::kNone) {
      std::printf("real vehicle id %d at lane %d, lon %.0fm\n", t.id,
                  t.states.back().lane, t.states.back().lon_m);
    } else {
      std::printf("phantom (%s missing) at lane %d, lon %.0fm, v %.0fm/s\n",
                  ToString(t.kind), t.states.back().lane,
                  t.states.back().lon_m, t.states.back().v_mps);
    }
  }

  std::printf("\nsurroundings of the front target (id %d):\n",
              scene.targets[perception::kFront].id);
  for (int j = 0; j < perception::kNumAreas; ++j) {
    const perception::VehicleHistory& s =
        scene.surroundings[perception::kFront][j];
    std::printf("  %-11s: %s", ToString(static_cast<perception::Area>(j)),
                ToString(s.kind));
    if (!s.states.empty()) {
      std::printf(" (lane %d, lon %.0fm)", s.states.back().lane,
                  s.states.back().lon_m);
    }
    if (s.kind == perception::MissingKind::kOcclusion) {
      std::printf("   <- Eq. 6: mirrored beyond the blocker");
    }
    std::printf("\n");
  }

  // Feed the completed graph to an (untrained) LST-GAT and show the
  // attention it places on the front target's neighborhood.
  const perception::StGraph graph = perception::BuildStGraph(scene, road);
  Rng rng(7);
  perception::LstGat model(perception::LstGatConfig{}, rng);
  const std::vector<double> alpha =
      model.AttentionWeights(graph, perception::kFront);
  std::printf("\nLST-GAT attention over [self + 6 surroundings] of the "
              "front target:\n  ");
  for (double a : alpha) std::printf("%.3f ", a);
  std::printf("\n(42-node spatial-temporal graph built over z=%d steps)\n",
              graph.z());
  return 0;
}
