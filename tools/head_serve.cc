// head_serve — in-process load driver for the decision service. There is no
// network transport (the SubmitDecision/future API *is* the serving seam);
// this tool stands in for a fleet of clients and prints the latency /
// throughput / admission-control picture an operator would read off the
// serve.* metrics in production.
//
//   head_serve [flags]
//
// Load shape:
//   --requests=N     total requests to issue (default 2000)
//   --clients=C      closed-loop client threads, each submit-and-wait
//                    (default 4; ignored when --rate is set)
//   --rate=R         open-loop Poisson arrivals at R req/s from a single
//                    submitter that never waits for replies (default 0 = off)
//   --predict        issue prediction requests instead of decision requests
//
// Service config:
//   --batch=B        max_batch (default 32)
//   --window-us=T    batching window in µs (default 200)
//   --queue=N        admission queue capacity (default 1024)
//   --deadline-us=D  per-request deadline in µs (default 0 = none)
//   --threads=N      worker pool size (default HEAD_THREADS or hw threads)
//
// Hot swap:
//   --swap-ms=M      republish fresh weights every M ms while the load runs
//                    (default 0 = publish once and serve one version)
//
// Misc:
//   --seed=S         rng seed for weights and request payloads (default 17)
//   --metrics-out=P  write the full obs metrics snapshot as JSON on exit
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "nn/kernels/simd.h"
#include "nn/plan.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "perception/lst_gat.h"
#include "rl/nets.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace {

using namespace head;

constexpr int kHidden = 64;
constexpr double kAMax = 3.0;
constexpr int kHistoryDepth = 3;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double ArgValue(int argc, char** argv, const std::string& flag,
                double fallback) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return std::atof(arg.c_str() + prefix.size());
  }
  return fallback;
}

std::string ArgString(int argc, char** argv, const std::string& flag) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

rl::AugmentedState RandomState(Rng& rng) {
  rl::AugmentedState s;
  s.h = nn::Tensor::Uniform(rl::kStateHRows, rl::kStateCols, -1.0, 1.0, rng);
  s.f = nn::Tensor::Uniform(rl::kStateFRows, rl::kStateCols, -1.0, 1.0, rng);
  return s;
}

perception::StGraph RandomGraph(Rng& rng) {
  perception::StGraph graph;
  graph.steps.resize(kHistoryDepth);
  for (perception::StepNodes& step : graph.steps) {
    for (auto& target : step.feat) {
      for (auto& node : target) {
        for (double& v : node) v = rng.Uniform(-1.0, 1.0);
      }
    }
  }
  for (auto& rel : graph.target_rel_current) {
    for (double& v : rel) v = rng.Uniform(-5.0, 5.0);
  }
  return graph;
}

serve::ModelFactories Factories() {
  serve::ModelFactories factories;
  factories.make_x = [](Rng& rng) {
    return std::make_unique<rl::BpXNet>(kHidden, kAMax, rng);
  };
  factories.make_q = [](Rng& rng) {
    return std::make_unique<rl::BpQNet>(kHidden, rng);
  };
  factories.make_predictor = [](Rng& rng) {
    return std::make_unique<perception::LstGat>(perception::LstGatConfig{},
                                                rng);
  };
  return factories;
}

/// What every client thread records per reply; merged for the final table.
struct ClientStats {
  std::vector<double> latencies_s;  ///< kOk replies only
  int64_t ok = 0;
  int64_t rejected = 0;
  int64_t deadline = 0;
  int64_t shutdown = 0;
  uint64_t min_version = 0;
  uint64_t max_version = 0;

  void Record(serve::ServeStatus status, double latency_s, uint64_t version) {
    switch (status) {
      case serve::ServeStatus::kOk:
        ++ok;
        latencies_s.push_back(latency_s);
        if (min_version == 0 || version < min_version) min_version = version;
        max_version = std::max(max_version, version);
        break;
      case serve::ServeStatus::kRejected:
        ++rejected;
        break;
      case serve::ServeStatus::kDeadlineExceeded:
        ++deadline;
        break;
      case serve::ServeStatus::kShutdown:
        ++shutdown;
        break;
    }
  }

  void Merge(const ClientStats& other) {
    latencies_s.insert(latencies_s.end(), other.latencies_s.begin(),
                       other.latencies_s.end());
    ok += other.ok;
    rejected += other.rejected;
    deadline += other.deadline;
    shutdown += other.shutdown;
    if (other.min_version != 0 &&
        (min_version == 0 || other.min_version < min_version)) {
      min_version = other.min_version;
    }
    max_version = std::max(max_version, other.max_version);
  }
};

double QuantileUs(const std::vector<double>& sorted_s, double q) {
  if (sorted_s.empty()) return 0.0;
  const double rank = q * (sorted_s.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_s.size() - 1);
  const double frac = rank - lo;
  return (sorted_s[lo] * (1.0 - frac) + sorted_s[hi] * frac) * 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const int requests = static_cast<int>(ArgValue(argc, argv, "--requests", 2000));
  const int clients = std::max(1, static_cast<int>(ArgValue(argc, argv, "--clients", 4)));
  const double rate = ArgValue(argc, argv, "--rate", 0.0);
  const bool predict = HasFlag(argc, argv, "--predict");
  const int64_t deadline_us =
      static_cast<int64_t>(ArgValue(argc, argv, "--deadline-us", 0));
  const int64_t swap_ms = static_cast<int64_t>(ArgValue(argc, argv, "--swap-ms", 0));
  const uint64_t seed = static_cast<uint64_t>(ArgValue(argc, argv, "--seed", 17));

  serve::ServeConfig config;
  config.max_batch = static_cast<int>(ArgValue(argc, argv, "--batch", 32));
  config.batch_window_us =
      static_cast<int64_t>(ArgValue(argc, argv, "--window-us", 200));
  config.queue_capacity = static_cast<int>(ArgValue(argc, argv, "--queue", 1024));
  config.default_deadline_us = deadline_us;

  const int threads = static_cast<int>(
      ArgValue(argc, argv, "--threads", parallel::ConfiguredThreadCount()));
  parallel::ThreadPool pool(threads);
  parallel::GlobalPoolOverride pool_override(&pool);

  namespace kernels = nn::kernels;
  std::cout << "head_serve: " << requests << " " << (predict ? "prediction" : "decision")
            << " requests, "
            << (rate > 0.0 ? "open-loop @" + std::to_string(rate) + " req/s"
                           : std::to_string(clients) + " closed-loop clients")
            << ", max_batch " << config.max_batch << ", window "
            << config.batch_window_us << "us, queue " << config.queue_capacity
            << ", deadline "
            << (deadline_us > 0 ? std::to_string(deadline_us) + "us" : "none")
            << ", swap "
            << (swap_ms > 0 ? "every " + std::to_string(swap_ms) + "ms" : "off")
            << ", " << threads << " threads, kernel "
            << kernels::IsaName(kernels::ActiveIsa()) << ", plans "
            << (nn::PlansEnabled() ? "on" : "off") << "\n";

  serve::ModelSnapshotRegistry registry(Factories(), /*keep=*/2, seed);
  Rng weights_rng(seed);
  rl::BpXNet x(kHidden, kAMax, weights_rng);
  rl::BpQNet q(kHidden, weights_rng);
  const perception::LstGat predictor(perception::LstGatConfig{}, weights_rng);
  registry.Publish(x, q, &predictor);

  serve::DecisionService service(&registry, config);

  // Request payload pools (shared, read-only once built).
  Rng payload_rng(seed + 1);
  std::vector<rl::AugmentedState> states;
  std::vector<perception::StGraph> graphs;
  for (int i = 0; i < 64; ++i) states.push_back(RandomState(payload_rng));
  for (int i = 0; i < 16; ++i) graphs.push_back(RandomGraph(payload_rng));

  // Optional hot-swap publisher: keeps republishing perturbed weights while
  // the load runs, so replies span several model_versions.
  std::atomic<bool> done{false};
  std::thread publisher;
  if (swap_ms > 0) {
    publisher = std::thread([&] {
      Rng swap_rng(seed + 2);
      while (!done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(swap_ms));
        rl::BpXNet fresh_x(kHidden, kAMax, swap_rng);
        rl::BpQNet fresh_q(kHidden, swap_rng);
        registry.Publish(fresh_x, fresh_q, &predictor);
      }
    });
  }

  auto submit_decision = [&](int i) {
    serve::DecisionRequest request;
    request.state = states[i % states.size()];
    return service.SubmitDecision(std::move(request));
  };
  auto submit_prediction = [&](int i) {
    serve::PredictionRequest request;
    request.graph = graphs[i % graphs.size()];
    return service.SubmitPrediction(std::move(request));
  };

  ClientStats stats;
  const double t0 = Now();
  if (rate > 0.0) {
    // Open loop: fixed Poisson arrival schedule, replies drained afterwards.
    Rng arrival_rng(seed + 3);
    std::vector<std::future<serve::DecisionReply>> decision_futures;
    std::vector<std::future<serve::PredictionReply>> prediction_futures;
    double next_arrival = Now();
    for (int i = 0; i < requests; ++i) {
      next_arrival += -std::log(1.0 - arrival_rng.Uniform(0.0, 1.0)) / rate;
      while (Now() < next_arrival) std::this_thread::yield();
      if (predict) {
        prediction_futures.push_back(submit_prediction(i));
      } else {
        decision_futures.push_back(submit_decision(i));
      }
    }
    for (auto& f : decision_futures) {
      const serve::DecisionReply r = f.get();
      stats.Record(r.status, r.latency_s, r.model_version);
    }
    for (auto& f : prediction_futures) {
      const serve::PredictionReply r = f.get();
      stats.Record(r.status, r.latency_s, r.model_version);
    }
  } else {
    // Closed loop: each client thread keeps exactly one request in flight.
    std::vector<ClientStats> per_client(clients);
    std::vector<std::thread> threads_vec;
    threads_vec.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads_vec.emplace_back([&, c] {
        ClientStats& mine = per_client[c];
        const int n = requests / clients + (c < requests % clients ? 1 : 0);
        for (int i = 0; i < n; ++i) {
          if (predict) {
            const serve::PredictionReply r = submit_prediction(c * 7919 + i).get();
            mine.Record(r.status, r.latency_s, r.model_version);
          } else {
            const serve::DecisionReply r = submit_decision(c * 7919 + i).get();
            mine.Record(r.status, r.latency_s, r.model_version);
          }
        }
      });
    }
    for (auto& t : threads_vec) t.join();
    for (const ClientStats& c : per_client) stats.Merge(c);
  }
  const double elapsed = Now() - t0;
  done.store(true, std::memory_order_release);
  if (publisher.joinable()) publisher.join();

  std::sort(stats.latencies_s.begin(), stats.latencies_s.end());
  const obs::HistogramSnapshot batch_hist =
      obs::GetHistogram("serve.batch_size").Snapshot();

  std::cout << "served " << stats.ok << "/" << requests << " ok in " << elapsed
            << "s (" << static_cast<double>(stats.ok) / elapsed << " req/s)\n"
            << "rejected " << stats.rejected << ", deadline_exceeded "
            << stats.deadline << ", shutdown " << stats.shutdown << "\n"
            << "latency p50 " << QuantileUs(stats.latencies_s, 0.50)
            << "us, p90 " << QuantileUs(stats.latencies_s, 0.90) << "us, p95 "
            << QuantileUs(stats.latencies_s, 0.95) << "us, p99 "
            << QuantileUs(stats.latencies_s, 0.99) << "us\n"
            << "batches " << batch_hist.count << " (mean size "
            << batch_hist.Mean() << ")\n"
            << "model versions served: " << stats.min_version << ".."
            << stats.max_version << " (published "
            << registry.current_version() << ")\n";

  const std::string metrics_out = ArgString(argc, argv, "--metrics-out");
  if (!metrics_out.empty()) {
    if (!obs::WriteMetricsJsonFile(metrics_out)) {
      std::cerr << "failed to write " << metrics_out << "\n";
      return 1;
    }
    std::cout << "metrics written to " << metrics_out << "\n";
  }
  return 0;
}
