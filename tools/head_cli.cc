// head_cli — command-line front end for the library.
//
//   head_cli scenarios
//       List the built-in traffic scenarios.
//   head_cli run <scenario> <policy> [episodes] [seed]
//       Evaluate a policy (idm | acc | tpbts | head) in a scenario and print
//       the Table I metrics row. `head` loads cached weights from
//       .head_cache/ (training them first if absent).
//   head_cli trace <scenario> <policy> <out.csv> [seed]
//       Record one episode and write the per-step CSV.
//   head_cli render <scenario> [seed]
//       Print a short ASCII replay of an IDM-LC episode.
//   head_cli replay <manifest.json>
//       Re-run a flight-recorder dump and verify bitwise agreement with the
//       recorded trajectory (exit 0 = parity, 1 = divergence).
//
// Global flags (any position):
//   --metrics-out=<path>   Write a JSON metrics snapshot on exit.
//   --trace-out=<path>     Enable span tracing; write Chrome trace-event
//                          JSON on exit (open in chrome://tracing/Perfetto).
//   --record-dir=<path>    Enable the flight recorder; collisions (and other
//                          configured triggers) dump JSONL + manifest there.
//   --profile-out=<path>   Enable the op profiler; write the per-(op, shape)
//                          profile JSON on exit (tools/profile_diff.py input)
//                          and print the top-10 table to stderr. Combined
//                          with --trace-out, the trace additionally carries
//                          the profiler's GFLOP/s / GB/s counter tracks.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "decision/idm_lc.h"
#include "eval/episode_runner.h"
#include "eval/replay.h"
#include "eval/table.h"
#include "eval/trace.h"
#include "nn/kernels/simd.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "sim/scenario.h"

namespace {

using namespace head;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  head_cli [flags] scenarios\n"
               "  head_cli [flags] run <scenario> <policy> [episodes] [seed]\n"
               "  head_cli [flags] trace <scenario> <policy> <out.csv> "
               "[seed]\n"
               "  head_cli [flags] render <scenario> [seed]\n"
               "  head_cli [flags] replay <manifest.json>\n"
               "flags: --metrics-out=<path> | --trace-out=<path> | "
               "--record-dir=<path> | --profile-out=<path>\n"
               "policies: idm | acc | tpbts | crash | head\n"
               "scenarios:");
  for (const std::string& name : sim::ScenarioNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

int CmdRun(int argc, char** argv) {
  if (argc < 4) return Usage();
  const sim::SimConfig scenario = sim::ScenarioByName(argv[2]);
  auto policy = eval::MakeNamedPolicy(argv[3], scenario.road);
  if (policy == nullptr) return Usage();

  eval::RunnerConfig runner;
  runner.sim = scenario;
  runner.scenario_name = argv[2];
  runner.episodes = argc > 4 ? std::atoi(argv[4]) : 10;
  runner.seed_base = argc > 5 ? std::atoll(argv[5]) : 1000;
  const eval::AggregateMetrics m = eval::RunPolicy(*policy, runner);

  eval::TablePrinter table(
      {"Policy", "AvgDT-A(s)", "AvgDT-C(s)", "Avg#-CA", "MinTTC-A(s)",
       "AvgV-A(m/s)", "AvgJ-A(m/s2)", "AvgD-CA(m/s)", "Done/Coll"});
  table.AddRow({policy->name(), eval::FormatDouble(m.avg_dt_a_s, 1),
                eval::FormatDouble(m.avg_dt_c_s, 1),
                eval::FormatDouble(m.avg_num_ca, 1),
                eval::FormatDouble(m.min_ttc_a_s, 2),
                eval::FormatDouble(m.avg_v_a_mps, 2),
                eval::FormatDouble(m.avg_j_a_mps2, 2),
                eval::FormatDouble(m.avg_d_ca_mps, 2),
                std::to_string(m.completed) + "/" +
                    std::to_string(m.collisions)});
  table.Print(std::cout, std::string(argv[2]) + " scenario, " +
                             std::to_string(runner.episodes) + " episodes");
  return 0;
}

int CmdTrace(int argc, char** argv) {
  if (argc < 5) return Usage();
  eval::TraceConfig config;
  config.sim = sim::ScenarioByName(argv[2]);
  auto policy = eval::MakeNamedPolicy(argv[3], config.sim.road);
  if (policy == nullptr) return Usage();
  const uint64_t seed = argc > 5 ? std::atoll(argv[5]) : 7;
  const eval::EpisodeTrace trace =
      eval::RecordEpisode(*policy, config, seed);
  std::ofstream os(argv[4]);
  if (!os.good()) {
    std::fprintf(stderr, "cannot open %s for writing\n", argv[4]);
    return 1;
  }
  eval::WriteTraceCsv(trace, os);
  std::printf("%zu steps (%s) written to %s\n", trace.steps.size(),
              ToString(trace.final_status), argv[4]);
  return 0;
}

int CmdRender(int argc, char** argv) {
  if (argc < 3) return Usage();
  eval::TraceConfig config;
  config.sim = sim::ScenarioByName(argv[2]);
  decision::IdmLcPolicy policy(
      decision::RuleBasedConfig::ForRoad(config.sim.road));
  const uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 7;
  const eval::EpisodeTrace trace = eval::RecordEpisode(policy, config, seed);
  const size_t n = trace.steps.size();
  for (size_t k = 0; k < 5 && n > 0; ++k) {
    const size_t idx = std::min(n - 1, k * (n / 5 + 1));
    std::cout << eval::RenderStep(trace.steps[idx], config.sim.road) << "\n";
  }
  return 0;
}

int CmdReplay(int argc, char** argv) {
  if (argc < 3) return Usage();
  const eval::ReplayResult r = eval::ReplayFile(argv[2]);
  if (r.ok) {
    std::printf(
        "replay OK: %d recorded steps matched bitwise "
        "(%d steps replayed, end=%s)\n",
        r.records_compared, r.steps_replayed, obs::ToString(r.replay_end));
    return 0;
  }
  std::fprintf(stderr, "replay FAILED: %s\n", r.error.c_str());
  if (r.first_mismatch_step >= 0) {
    std::fprintf(stderr, "first divergence at step %d (%d records matched)\n",
                 r.first_mismatch_step, r.records_compared);
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the observability flags before command dispatch.
  std::string metrics_out;
  std::string trace_out;
  std::string record_dir;
  std::string profile_out;
  std::vector<char*> args;
  args.reserve(argc);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::string("--metrics-out=").size());
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::string("--trace-out=").size());
    } else if (arg.rfind("--record-dir=", 0) == 0) {
      record_dir = arg.substr(std::string("--record-dir=").size());
    } else if (arg.rfind("--profile-out=", 0) == 0) {
      profile_out = arg.substr(std::string("--profile-out=").size());
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!trace_out.empty()) head::obs::SetTracingEnabled(true);
  if (!profile_out.empty()) {
    head::nn::kernels::CalibrateProfilerRoofline();
    head::obs::StartProfiling();
  }
  if (!record_dir.empty()) {
    head::obs::RecorderConfig rc;
    rc.dump_dir = record_dir;
    head::obs::ConfigureRecorder(rc);
    head::obs::SetRecordingEnabled(true);
  }

  int rc = 2;
  const int n = static_cast<int>(args.size());
  const std::string cmd = n > 1 ? args[1] : "";
  if (cmd == "scenarios") {
    for (const std::string& name : head::sim::ScenarioNames()) {
      std::printf("%s\n", name.c_str());
    }
    rc = 0;
  } else if (cmd == "run") {
    rc = CmdRun(n, args.data());
  } else if (cmd == "trace") {
    rc = CmdTrace(n, args.data());
  } else if (cmd == "render") {
    rc = CmdRender(n, args.data());
  } else if (cmd == "replay") {
    rc = CmdReplay(n, args.data());
  } else {
    rc = Usage();
  }

  if (!profile_out.empty()) {
    head::obs::StopProfiling();
    const head::obs::ProfileReport report = head::obs::CollectProfile();
    std::fputs(head::obs::ProfileToText(report, 10).c_str(), stderr);
    if (head::obs::WriteProfileJsonFile(profile_out)) {
      std::fprintf(stderr, "profile written to %s\n", profile_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write profile to %s\n",
                   profile_out.c_str());
      rc = rc == 0 ? 1 : rc;
    }
  }
  if (!trace_out.empty()) {
    // With the profiler on, merge its throughput counter tracks into the
    // span trace; plain spans otherwise.
    const bool ok = profile_out.empty()
                        ? head::obs::WriteChromeTraceFile(trace_out)
                        : head::obs::WriteChromeTraceWithCountersFile(
                              trace_out);
    if (ok) {
      std::fprintf(stderr, "trace written to %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_out.c_str());
      rc = rc == 0 ? 1 : rc;
    }
  }
  if (!record_dir.empty()) {
    std::fprintf(stderr, "%lld flight dump(s) written to %s\n",
                 static_cast<long long>(head::obs::DumpsWritten()),
                 record_dir.c_str());
  }
  if (!metrics_out.empty()) {
    if (head::obs::WriteMetricsJsonFile(metrics_out)) {
      std::fprintf(stderr, "metrics written to %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   metrics_out.c_str());
      rc = rc == 0 ? 1 : rc;
    }
  }
  return rc;
}
