#!/usr/bin/env bash
# Sanitizer gate for the concurrent observability layer: builds the project
# with ThreadSanitizer (HEAD_SANITIZE=thread) and runs the obs + sim test
# binaries under it. Usage:
#
#   tools/check.sh              # TSan build + obs/sim tests
#   HEAD_SANITIZE=address tools/check.sh   # same gate under ASan+UBSan
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER="${HEAD_SANITIZE:-thread}"
BUILD_DIR="build-${SANITIZER}san"

cmake -B "${BUILD_DIR}" -S . -DHEAD_SANITIZE="${SANITIZER}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j \
  --target obs_test obs_trace_test sim_simulation_test sim_models_test

echo "== running obs + sim tests under ${SANITIZER} sanitizer =="
for t in obs_test obs_trace_test sim_simulation_test sim_models_test; do
  echo "-- ${t}"
  "${BUILD_DIR}/tests/${t}"
done
echo "== ${SANITIZER}-sanitized checks passed =="
