#!/usr/bin/env bash
# CI-style gates beyond plain ctest:
#   1. Sanitizer stage: builds and runs the concurrency-sensitive tests under
#      ThreadSanitizer AND AddressSanitizer (+UBSan) — the obs + sim tests,
#      the batched-ops test that exercises the thread-local grad-mode switch,
#      the arena/tensor-pool test (cold-vs-warm tape parity, pooled-buffer
#      recycling — the ASan pass is what proves recycled buffers are never
#      used after free), and the parallel-layer tests, all pinned to
#      HEAD_THREADS=4 so the pool actually races even on a 1-core CI box.
#   2. Perf smoke stage: optimized build of bench/training_throughput (a few
#      seconds at the fast profile), gated against the checked-in baseline —
#      fails if batched training or pooled-rollout throughput regresses more
#      than 30% — and against the zero-allocation invariant: a warmed-up
#      training step must perform 0 arena/pool heap events
#      (--require-zero-allocs). Emits BENCH_training_throughput.json and an
#      obs metrics snapshot (nn_alloc_* gauges) next to the build.
#   3. Scalar-fallback stage: configures a tree with -DHEAD_SIMD_DISABLE=ON
#      (no AVX2 TU — the portable scalar kernel backend only, as on a
#      non-x86 or pre-AVX2 host) and runs the *entire* ctest suite against
#      it. Proves the SIMD dispatch layer degrades to the seed-exact scalar
#      schedules without losing a single test.
#   4. Flight-recorder smoke stage: drives head_cli end-to-end — records a
#      forced-collision episode (crash policy) into a scratch dump dir, then
#      replays the dump and requires bitwise parity with the recording.
#   5. Profile stage: records a short op profile from the optimized tree
#      (training_throughput --profile-out at --threads=1, requiring ≥95%
#      of root wall time attributed to per-op rows) and diffs it against
#      the committed baseline with tools/profile_diff.py — fails when any
#      sizable op's per-call self time regressed ≥50%.
#   6. Plans-off stage: the full ctest suite with HEAD_PLANS=0, pinning
#      every capture-capable call site to the eager tape. Proves the
#      static-plan fallback path (and everything downstream of it) stays
#      healthy when plans are globally disabled.
#   7. Serve stage: optimized build of bench/serve_throughput (single-request
#      vs cross-client-batched decision serving plus three open-loop Poisson
#      load points), gated against the checked-in baseline — fails if serving
#      throughput regresses more than 30%, if the 0.6x-load p99 blows past
#      its recorded noise envelope, or if a warmed-up batched replay performs
#      any arena/pool heap event per request (--require-zero-allocs).
#
# Usage:
#   tools/check.sh                         # all stages (tsan + asan + perf)
#   HEAD_SANITIZE=address tools/check.sh   # only the ASan+UBSan stage
#   HEAD_SANITIZE=thread tools/check.sh    # only the TSan stage
#   HEAD_SKIP_PERF=1 tools/check.sh        # skip the perf gate
#   HEAD_SKIP_SCALAR=1 tools/check.sh      # skip the scalar-fallback suite
#   HEAD_SKIP_SMOKE=1 tools/check.sh       # skip the flight-recorder smoke
#   HEAD_SKIP_PROFILE=1 tools/check.sh     # skip the op-profile diff gate
#   HEAD_SKIP_PLANS=1 tools/check.sh       # skip the plans-off ctest suite
#   HEAD_SKIP_SERVE=1 tools/check.sh       # skip the serve throughput gate
set -euo pipefail

cd "$(dirname "$0")/.."

# Default: run both sanitizers back to back. HEAD_SANITIZE picks just one.
SANITIZERS=(thread address)
if [[ -n "${HEAD_SANITIZE:-}" ]]; then
  SANITIZERS=("${HEAD_SANITIZE}")
fi

SAN_TESTS=(obs_test obs_trace_test obs_recorder_test obs_timeseries_test
           obs_profiler_test flight_replay_test sim_simulation_test
           sim_models_test nn_batched_ops_test nn_arena_test nn_simd_test
           nn_plan_test parallel_test parallel_determinism_test serve_test)

for SANITIZER in "${SANITIZERS[@]}"; do
  BUILD_DIR="build-${SANITIZER}san"

  cmake -B "${BUILD_DIR}" -S . -DHEAD_SANITIZE="${SANITIZER}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${BUILD_DIR}" -j --target "${SAN_TESTS[@]}"

  echo "== running obs + sim + nn + parallel tests under ${SANITIZER} sanitizer =="
  for t in "${SAN_TESTS[@]}"; do
    echo "-- ${t} (HEAD_THREADS=4)"
    HEAD_THREADS=4 "${BUILD_DIR}/tests/${t}"
  done
  echo "== ${SANITIZER}-sanitized checks passed =="
done

if [[ "${HEAD_SKIP_PERF:-0}" != "1" ]]; then
  # Perf needs an optimized, unsanitized build — separate from the sanitizer
  # trees so switching stages never rebuilds the world.
  PERF_BUILD_DIR="build-perf"
  cmake -B "${PERF_BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "${PERF_BUILD_DIR}" -j --target training_throughput

  # HEAD_PERF_THREADS pins the measured thread count; the committed baseline
  # was recorded at --threads=1 on a 1-core container, so 1 is the default.
  PERF_THREADS="${HEAD_PERF_THREADS:-1}"
  echo "== perf smoke: training throughput (--threads=${PERF_THREADS}) vs checked-in baseline =="
  "${PERF_BUILD_DIR}/bench/training_throughput" \
    --skip-per-sample \
    --threads="${PERF_THREADS}" \
    --json-out="${PERF_BUILD_DIR}/BENCH_training_throughput.json" \
    --metrics-out="${PERF_BUILD_DIR}/BENCH_metrics.json" \
    --baseline=bench/baselines/training_throughput.json \
    --max-regress=0.30 \
    --require-zero-allocs
  echo "== perf smoke passed (JSON: ${PERF_BUILD_DIR}/BENCH_training_throughput.json) =="
fi

if [[ "${HEAD_SKIP_SCALAR:-0}" != "1" ]]; then
  # Scalar-fallback suite: the whole test battery against a binary with no
  # AVX2 TU at all — what a non-x86 / pre-AVX2 host would run. The SIMD
  # parity tests GTEST_SKIP their AVX2 legs; everything else must pass on
  # the portable scalar backend alone.
  SCALAR_BUILD_DIR="build-scalar"
  cmake -B "${SCALAR_BUILD_DIR}" -S . -DHEAD_SIMD_DISABLE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${SCALAR_BUILD_DIR}" -j
  echo "== scalar-fallback suite: full ctest with -DHEAD_SIMD_DISABLE=ON =="
  ctest --test-dir "${SCALAR_BUILD_DIR}" --output-on-failure
  echo "== scalar-fallback suite passed =="
fi

if [[ "${HEAD_SKIP_SMOKE:-0}" != "1" ]]; then
  # Shares the optimized tree with the perf stage (creates it when perf was
  # skipped); only head_cli needs to build.
  SMOKE_BUILD_DIR="build-perf"
  cmake -B "${SMOKE_BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "${SMOKE_BUILD_DIR}" -j --target head_cli

  DUMP_DIR="${SMOKE_BUILD_DIR}/flight_smoke"
  rm -rf "${DUMP_DIR}"
  echo "== flight-recorder smoke: record a forced collision, then replay =="
  "${SMOKE_BUILD_DIR}/tools/head_cli" --record-dir="${DUMP_DIR}" \
    run dense crash 1 1234
  MANIFEST="$(ls "${DUMP_DIR}"/*.manifest.json | head -1)"
  [[ -n "${MANIFEST}" ]] || { echo "no flight dump produced" >&2; exit 1; }
  "${SMOKE_BUILD_DIR}/tools/head_cli" replay "${MANIFEST}"
  echo "== flight-recorder smoke passed (${MANIFEST}) =="
fi

if [[ "${HEAD_SKIP_PROFILE:-0}" != "1" ]]; then
  # Shares the optimized tree with the perf/smoke stages. The profiled pass
  # is deliberately tiny (1 trial, no gemm sweep) — the gate is per-call
  # self time, which a short run measures as well as a long one. The
  # committed baseline records each op's *noise envelope* (per-op max
  # us/call over repeated runs on the reference container, whose scheduler
  # jitter swings sub-ms ops several-fold run to run), so the diff is a
  # backstop against step-change regressions, not a ±50% microbenchmark.
  PROFILE_BUILD_DIR="build-perf"
  cmake -B "${PROFILE_BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "${PROFILE_BUILD_DIR}" -j --target training_throughput

  echo "== op-profile: record (--threads=1, coverage >= 95%) and diff vs baseline =="
  "${PROFILE_BUILD_DIR}/bench/training_throughput" \
    --skip-per-sample --skip-gemm --trials=1 --threads=1 \
    --profile-out="${PROFILE_BUILD_DIR}/BENCH_profile.json" \
    --min-profile-coverage=0.95 > /dev/null
  python3 tools/profile_diff.py \
    bench/baselines/profile_training_throughput.json \
    "${PROFILE_BUILD_DIR}/BENCH_profile.json" \
    --threshold=0.5
  echo "== op-profile diff passed (${PROFILE_BUILD_DIR}/BENCH_profile.json) =="
fi

if [[ "${HEAD_SKIP_PLANS:-0}" != "1" ]]; then
  # Plans-off suite: the whole test battery with HEAD_PLANS=0, so every
  # static_plans call site takes its eager fallback. Shares the optimized
  # tree with the perf/smoke/profile stages; building the remaining test
  # targets there is incremental.
  PLANS_BUILD_DIR="build-perf"
  cmake -B "${PLANS_BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "${PLANS_BUILD_DIR}" -j
  echo "== plans-off suite: full ctest with HEAD_PLANS=0 =="
  HEAD_PLANS=0 ctest --test-dir "${PLANS_BUILD_DIR}" --output-on-failure
  echo "== plans-off suite passed =="
fi

if [[ "${HEAD_SKIP_SERVE:-0}" != "1" ]]; then
  # Shares the optimized tree with the perf/smoke/profile stages. Like the
  # perf stage, the committed baseline was recorded at --threads=1 on the
  # 1-core reference container; HEAD_PERF_THREADS overrides.
  SERVE_BUILD_DIR="build-perf"
  cmake -B "${SERVE_BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "${SERVE_BUILD_DIR}" -j --target serve_throughput

  SERVE_THREADS="${HEAD_PERF_THREADS:-1}"
  echo "== serve smoke: decision-serving throughput (--threads=${SERVE_THREADS}) vs checked-in baseline =="
  "${SERVE_BUILD_DIR}/bench/serve_throughput" \
    --threads="${SERVE_THREADS}" \
    --json-out="${SERVE_BUILD_DIR}/BENCH_serve_throughput.json" \
    --metrics-out="${SERVE_BUILD_DIR}/BENCH_serve_metrics.json" \
    --baseline=bench/baselines/serve_throughput.json \
    --max-regress=0.30 \
    --require-zero-allocs
  echo "== serve smoke passed (JSON: ${SERVE_BUILD_DIR}/BENCH_serve_throughput.json) =="
fi
