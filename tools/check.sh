#!/usr/bin/env bash
# CI-style gates beyond plain ctest:
#   1. Sanitizer stage: builds with ThreadSanitizer (HEAD_SANITIZE=thread) and
#      runs the concurrent-observability + sim tests under it, the
#      batched-ops test that exercises the thread-local grad-mode switch,
#      and the parallel-layer tests (thread pool, threaded matmul kernels,
#      EnvPool rollouts + trainer) pinned to HEAD_THREADS=4 so the pool
#      actually races even on a 1-core CI box.
#   2. Perf smoke stage: optimized build of bench/training_throughput (a few
#      seconds at the fast profile), gated against the checked-in baseline —
#      fails if batched training or pooled-rollout throughput regresses more
#      than 30%. Emits BENCH_training_throughput.json next to the build.
#
# Usage:
#   tools/check.sh                         # both stages
#   HEAD_SANITIZE=address tools/check.sh   # sanitizer stage under ASan+UBSan
#   HEAD_SKIP_PERF=1 tools/check.sh        # sanitizer stage only
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER="${HEAD_SANITIZE:-thread}"
BUILD_DIR="build-${SANITIZER}san"

SAN_TESTS=(obs_test obs_trace_test sim_simulation_test sim_models_test
           nn_batched_ops_test parallel_test parallel_determinism_test)

cmake -B "${BUILD_DIR}" -S . -DHEAD_SANITIZE="${SANITIZER}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j --target "${SAN_TESTS[@]}"

echo "== running obs + sim + nn + parallel tests under ${SANITIZER} sanitizer =="
for t in "${SAN_TESTS[@]}"; do
  echo "-- ${t} (HEAD_THREADS=4)"
  HEAD_THREADS=4 "${BUILD_DIR}/tests/${t}"
done
echo "== ${SANITIZER}-sanitized checks passed =="

if [[ "${HEAD_SKIP_PERF:-0}" != "1" ]]; then
  # Perf needs an optimized, unsanitized build — separate from the sanitizer
  # tree so switching stages never rebuilds the world.
  PERF_BUILD_DIR="build-perf"
  cmake -B "${PERF_BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "${PERF_BUILD_DIR}" -j --target training_throughput

  # HEAD_PERF_THREADS pins the measured thread count; the committed baseline
  # was recorded at --threads=1 on a 1-core container, so 1 is the default.
  PERF_THREADS="${HEAD_PERF_THREADS:-1}"
  echo "== perf smoke: training throughput (--threads=${PERF_THREADS}) vs checked-in baseline =="
  "${PERF_BUILD_DIR}/bench/training_throughput" \
    --skip-per-sample \
    --threads="${PERF_THREADS}" \
    --json-out="${PERF_BUILD_DIR}/BENCH_training_throughput.json" \
    --baseline=bench/baselines/training_throughput.json \
    --max-regress=0.30
  echo "== perf smoke passed (JSON: ${PERF_BUILD_DIR}/BENCH_training_throughput.json) =="
fi
