#!/usr/bin/env python3
"""Compare two op-profiler JSON dumps and flag per-op regressions.

Usage:
  tools/profile_diff.py BASELINE.json CURRENT.json [options]

Both inputs are "head-profile-v1" files as written by --profile-out
(bench/training_throughput, head_cli) or obs::WriteProfileJsonFile.

Ops are matched by their full key (op, phase, m, n, k). The compared
quantity is per-call self time (self_ns / count) — counts routinely differ
between runs (different episode lengths, trial counts), so totals would
mostly diff the workload, not the code. An op regresses when its per-call
self time grew by at least --threshold (fraction) AND the op is big enough
to matter (--min-self-ms of self time in the current profile); ops below
the floor are noise on a shared box. Exit status: 0 = no regression,
1 = at least one flagged op, 2 = bad input.

Example gate (see tools/check.sh "profile" stage):
  tools/profile_diff.py bench/baselines/profile_training_throughput.json \
      build-perf/BENCH_profile.json --threshold=0.5

--json replaces the table with a machine-readable head-profile-diff-v1
document on stdout (same exit codes), for dashboards and bots.
"""

import argparse
import json
import sys


def load_profile(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.stderr.write(f"profile_diff: cannot read {path}: {e}\n")
        sys.exit(2)
    if not isinstance(doc, dict) or doc.get("schema") != "head-profile-v1":
        schema = doc.get("schema") if isinstance(doc, dict) else type(doc).__name__
        sys.stderr.write(
            f"profile_diff: {path}: unexpected schema "
            f"{schema!r} (want head-profile-v1)\n")
        sys.exit(2)
    ops = doc.get("ops")
    if not isinstance(ops, list):
        sys.stderr.write(
            f"profile_diff: {path}: malformed profile — \"ops\" is "
            f"{type(ops).__name__}, expected a list\n")
        sys.exit(2)
    for i, op in enumerate(ops):
        if not isinstance(op, dict):
            sys.stderr.write(
                f"profile_diff: {path}: ops[{i}] is not an object\n")
            sys.exit(2)
        missing = [f for f in ("op", "phase", "m", "n", "k", "self_ns")
                   if f not in op]
        if missing:
            sys.stderr.write(
                f"profile_diff: {path}: ops[{i}] "
                f"({op.get('op', '?')!r}) is missing {', '.join(missing)}\n")
            sys.exit(2)
    return doc


def roofline_gflops(doc):
    """Roofline peak as text; older dumps may lack the calibration block."""
    roofline = doc.get("roofline")
    if isinstance(roofline, dict) and isinstance(
            roofline.get("gflops"), (int, float)):
        return f"{roofline['gflops']:.1f} GFLOP/s"
    return "n/a"


def op_key(op):
    return (op["op"], op["phase"], op["m"], op["n"], op["k"])


def per_call_self_us(op):
    count = op.get("count", 0)
    return op["self_ns"] / count / 1e3 if count > 0 else 0.0


def shape_str(op):
    m, n, k = op["m"], op["n"], op["k"]
    if m == 0 and n == 0 and k == 0:
        return "-"
    dims = [d for d in (m, n, k) if d != 0]
    return "x".join(str(d) for d in dims)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold", type=float, default=0.5,
        help="per-call self-time growth fraction that counts as a regression "
             "(default 0.5 = +50%%; generous because shared CI boxes are noisy)")
    parser.add_argument(
        "--min-self-ms", type=float, default=0.5,
        help="ignore ops with less current self time than this (default 0.5)")
    parser.add_argument(
        "--top", type=int, default=15,
        help="rows shown in the comparison table (default 15; 0 = all)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable head-profile-diff-v1 document on "
             "stdout instead of the table (exit codes unchanged)")
    args = parser.parse_args()

    base = load_profile(args.baseline)
    curr = load_profile(args.current)
    base_ops = {op_key(o): o for o in base.get("ops", [])}
    curr_ops = {op_key(o): o for o in curr.get("ops", [])}

    rows = []        # (delta_frac, key, base_us, curr_us, curr_self_ms)
    regressions = []
    new_ops = []
    for key, c in curr_ops.items():
        self_ms = c["self_ns"] / 1e6
        b = base_ops.get(key)
        if b is None:
            if self_ms >= args.min_self_ms:
                new_ops.append((key, c))
            continue
        b_us, c_us = per_call_self_us(b), per_call_self_us(c)
        if b_us <= 0.0:
            continue
        delta = c_us / b_us - 1.0
        rows.append((delta, key, b_us, c_us, self_ms))
        if self_ms >= args.min_self_ms and delta >= args.threshold:
            regressions.append((delta, key, b_us, c_us, self_ms))
    removed = [k for k in base_ops if k not in curr_ops
               and base_ops[k]["self_ns"] / 1e6 >= args.min_self_ms]

    if args.json:
        def key_obj(key):
            op, phase, m, n, k = key
            return {"op": op, "phase": phase, "m": m, "n": n, "k": k}

        regressed_keys = {key for _, key, _, _, _ in regressions}
        doc = {
            "schema": "head-profile-diff-v1",
            "baseline": args.baseline,
            "current": args.current,
            "threshold": args.threshold,
            "min_self_ms": args.min_self_ms,
            "ops": [
                {**key_obj(key),
                 "base_us_per_call": b_us,
                 "curr_us_per_call": c_us,
                 "delta_frac": delta,
                 "curr_self_ms": self_ms,
                 "regressed": key in regressed_keys}
                for delta, key, b_us, c_us, self_ms in sorted(rows, reverse=True)
            ],
            "new_ops": [
                {**key_obj(key), "curr_self_ms": c["self_ns"] / 1e6}
                for key, c in sorted(new_ops, key=lambda e: -e[1]["self_ns"])
            ],
            "removed_ops": [key_obj(key) for key in removed],
            "regression_count": len(regressions),
            "ok": not regressions,
        }
        json.dump(doc, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 1 if regressions else 0

    print(f"baseline: {args.baseline}  "
          f"(coverage {base.get('coverage', 0):.1%}, "
          f"{len(base_ops)} ops, roofline {roofline_gflops(base)})")
    print(f"current:  {args.current}  "
          f"(coverage {curr.get('coverage', 0):.1%}, "
          f"{len(curr_ops)} ops, roofline {roofline_gflops(curr)})")
    print()

    rows.sort(reverse=True)
    shown = rows if args.top == 0 else rows[: args.top]
    header = (f"{'op':<26} {'ph':<3} {'shape':<16} {'base us/call':>12} "
              f"{'curr us/call':>12} {'delta':>8} {'self ms':>8}")
    print(header)
    print("-" * len(header))
    for delta, key, b_us, c_us, self_ms in shown:
        op, phase, m, n, k = key
        flag = "  <-- REGRESSION" if any(r[1] == key for r in regressions) else ""
        print(f"{op:<26} {phase:<3} "
              f"{shape_str({'m': m, 'n': n, 'k': k}):<16} "
              f"{b_us:>12.2f} {c_us:>12.2f} {delta:>+7.1%} "
              f"{self_ms:>8.3f}{flag}")
    if args.top != 0 and len(rows) > args.top:
        print(f"... ({len(rows) - args.top} more matched ops)")

    for key, c in sorted(new_ops, key=lambda e: -e[1]["self_ns"]):
        print(f"new op: {key[0]} {key[1]} {shape_str(c)} "
              f"({c['self_ns'] / 1e6:.3f} ms self)")
    for key in removed:
        print(f"removed op: {key[0]} {key[1]}")

    print()
    if regressions:
        print(f"PROFILE DIFF: {len(regressions)} op(s) regressed "
              f">= {args.threshold:.0%} per-call self time "
              f"(>= {args.min_self_ms} ms self):")
        for delta, key, b_us, c_us, _ in sorted(regressions, reverse=True):
            print(f"  {key[0]} [{key[1]}] {b_us:.2f} -> {c_us:.2f} us/call "
                  f"({delta:+.1%})")
        return 1
    print(f"profile diff OK: no op regressed >= {args.threshold:.0%} "
          f"(matched {len(rows)}, new {len(new_ops)}, removed {len(removed)})")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # stdout piped into head/grep and closed early
        sys.exit(0)
